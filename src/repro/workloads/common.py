"""Shared helpers for workload kernels."""

from __future__ import annotations

import random
from typing import List

from repro.isa.builder import ProgramBuilder, Reg

# Constants of the classic numerical-recipes LCG, also used in-ISA.
LCG_MUL = 1664525
LCG_ADD = 1013904223
LCG_MASK = (1 << 32) - 1


def emit_lcg_step(b: ProgramBuilder, state: Reg, tmp: Reg) -> None:
    """Advance the 32-bit LCG held in register ``state`` (clobbers ``tmp``).

    Kernels use this for data-dependent, value-unpredictable streams.
    """
    b.muli(tmp, state, LCG_MUL)
    b.addi(tmp, tmp, LCG_ADD)
    b.li(state, LCG_MASK)
    b.and_(state, tmp, state)


def emit_lcg_step_masked(
    b: ProgramBuilder, state: Reg, tmp: Reg, out: Reg, mask: int
) -> None:
    """LCG step, then ``out = (state >> 16) & mask`` (well-mixed bits)."""
    emit_lcg_step(b, state, tmp)
    b.srli(out, state, 16)
    b.andi(out, out, mask)


def build_time_stream(seed: int, length: int, limit: int) -> List[int]:
    """Deterministic pseudo-random ints in ``[0, limit)`` for data images."""
    rng = random.Random(seed)
    return [rng.randrange(limit) for _ in range(length)]


def build_time_text(seed: int, length: int, alphabet: int = 26) -> List[int]:
    """A letter stream with word-like repetition (for compress/perl).

    Draws from a small set of recurring "words" so dictionary-based
    kernels actually find matches, the way English text does.
    """
    rng = random.Random(seed)
    words = []
    for _ in range(40):
        n = rng.randrange(3, 9)
        words.append([rng.randrange(alphabet) for _ in range(n)])
    stream: List[int] = []
    while len(stream) < length:
        stream.extend(rng.choice(words))
    return stream[:length]
