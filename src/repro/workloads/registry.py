"""Workload registry (the repo's Table 3.1)."""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.errors import ConfigError
from repro.funcsim import run_program
from repro.isa.program import Program
from repro.trace.trace import Trace


@dataclass(frozen=True)
class WorkloadSpec:
    """One benchmark: its SPEC95 namesake and the module that builds it."""

    name: str
    description: str
    module: str
    builder: str


_SPECS: List[WorkloadSpec] = [
    WorkloadSpec(
        "go",
        "Game playing: territory/influence evaluation over a Go board.",
        "repro.workloads.go", "build_go",
    ),
    WorkloadSpec(
        "m88ksim",
        "A simulator for the 88100 processor: fetch/decode/dispatch "
        "interpreter over an embedded guest program.",
        "repro.workloads.m88ksim", "build_m88ksim",
    ),
    WorkloadSpec(
        "gcc",
        "A GNU C compiler: symbol-table hashing with chained buckets and "
        "IR list walks.",
        "repro.workloads.gcc", "build_gcc",
    ),
    WorkloadSpec(
        "compress",
        "Data compression using adaptive Lempel-Ziv coding.",
        "repro.workloads.compress", "build_compress",
    ),
    WorkloadSpec(
        "li",
        "Lisp interpreter: stack-machine bytecode evaluator.",
        "repro.workloads.li", "build_li",
    ),
    WorkloadSpec(
        "ijpeg",
        "JPEG encoder: blocked 2-D transform with quantization.",
        "repro.workloads.ijpeg", "build_ijpeg",
    ),
    WorkloadSpec(
        "perl",
        "Anagram search: letter-signature hashing and dictionary scans.",
        "repro.workloads.perl", "build_perl",
    ),
    WorkloadSpec(
        "vortex",
        "A single-user object-oriented database transaction benchmark.",
        "repro.workloads.vortex", "build_vortex",
    ),
]

WORKLOAD_NAMES: List[str] = [spec.name for spec in _SPECS]
_BY_NAME: Dict[str, WorkloadSpec] = {spec.name: spec for spec in _SPECS}

# Version of the workload generators as a whole. Bump whenever any
# kernel, the functional simulator, or the trace format changes in a way
# that alters generated traces: on-disk trace caches (repro.exec.cache)
# key on it, so a bump invalidates every cached trace at once.
GENERATOR_VERSION = "1"


def workload_specs() -> List[WorkloadSpec]:
    """All workload specs in the paper's Table 3.1 order."""
    return list(_SPECS)


def _resolve(name: str) -> Callable[..., Program]:
    if name not in _BY_NAME:
        raise ConfigError(
            f"unknown workload {name!r}; choose from {WORKLOAD_NAMES}"
        )
    spec = _BY_NAME[name]
    module = importlib.import_module(spec.module)
    return getattr(module, spec.builder)


def build_workload(name: str, seed: int = 0) -> Program:
    """Build the named workload program."""
    return _resolve(name)(seed=seed)


def generate_trace(
    name: str, length: int = 30_000, seed: int = 0
) -> Trace:
    """Execute the named workload and capture ``length`` instructions."""
    if length <= 0:
        raise ConfigError("trace length must be positive")
    program = build_workload(name, seed=seed)
    trace = run_program(program, max_instructions=length)
    if len(trace) < length:
        raise ConfigError(
            f"workload {name!r} halted after {len(trace)} instructions; "
            f"kernels must loop indefinitely"
        )
    return trace
