"""`m88ksim` stand-in: an instruction-set interpreter for a guest CPU.

Character: the SPEC version simulates an 88100; interpreters are the
classic high-value-predictability workload. The interpreter's own
recurrences — the guest PC walking long straight-line guest code, the
retired-instruction counter, the trace-ring cursor — are near-perfect
strides, yet they thread through the whole fetch/decode/dispatch/execute
body, so only a wide fetch engine can expose them: the paper's stand-out
benchmark (with `vortex`) for exactly this reason.

Dispatch is a compare tree (how gcc 2.7.2 lowers a small switch), which
also keeps the workload's control flow BTB-friendly.
"""

from __future__ import annotations

from typing import List

from repro.isa.builder import ProgramBuilder
from repro.isa.program import Program

# Guest instruction encoding: op | rd<<4 | rs<<8 | imm<<16.
G_HALT, G_LI, G_ADD, G_ADDI, G_BLT, G_MUL, G_ST, G_SUB = range(8)


def g(op: int, rd: int = 0, rs: int = 0, imm: int = 0) -> int:
    """Encode one guest instruction word."""
    return op | (rd << 4) | (rs << 8) | (imm << 16)


def default_guest_program() -> List[int]:
    """The default guest: a hot loop using each opcode exactly once.

    With one hot guest instruction per opcode, every host handler always
    processes the *same* guest instruction, so the guest-register values
    each handler loads form clean per-PC streams (the loop counter
    strides, the LI operand repeats) — the structure that makes an
    instruction-set simulator the most value-predictable SPEC member.
    """
    guest = [
        g(G_LI, 1, 0, 0),        # i = 0        (cold preamble)
        g(G_LI, 2, 0, 200),      # n = 200
    ]
    loop_start = len(guest)
    guest += [
        g(G_ADDI, 1, 0, 1),      # i += 1       (stride per h_addi visit)
        g(G_ADD, 5, 1),          # sum += i
        g(G_MUL, 6, 1),          # prod = prod * i (masked by the handler)
        g(G_SUB, 7, 5),          # r7 -= sum
        g(G_ST, 5, 1, 0),        # guest_mem[i & 63] = sum
        g(G_LI, 8, 0, 42),       # r8 = 42      (constant per h_li visit)
        g(G_BLT, 1, 2, loop_start),
        g(G_HALT),               # restart
    ]
    return guest


def build_m88ksim(seed: int = 0, guest_program: List[int] | None = None) -> Program:
    """Build the interpreter kernel.

    The host loop fetches a guest word, decodes the fields with
    shifts/masks, walks a compare tree on the opcode and runs a handler
    over the memory-resident guest register file. Bookkeeping mirrors
    the real simulator: a retired-instruction counter and a guest-PC
    trace ring. Guest HALT resets the guest PC, producing an endless
    trace.
    """
    del seed  # the guest program is fixed; interpretation dominates
    b = ProgramBuilder("m88ksim")
    guest = guest_program or default_guest_program()
    guest_base = b.array(guest, "guest_code")
    gregs_base = b.alloc(16, "guest_regs")
    gmem_base = b.alloc(64, "guest_mem")
    ring_base = b.alloc(64, "pc_ring")

    # s0 guest pc (word index), s1 &guest_code, s2 &guest_regs,
    # s4 retired counter, s5 &guest_mem, s6 &pc_ring.
    # Decode: t0 word, t1 op, t2 rd, t3 rs, t4 imm; t5-t7 scratch.
    b.li("s1", guest_base)
    b.li("s2", gregs_base)
    b.li("s5", gmem_base)
    b.li("s6", ring_base)
    b.li("s4", 0)

    b.label("reset")
    b.li("s0", 0)

    b.label("dispatch")
    b.slli("t0", "s0", 2)
    # Early induction update (classic scheduling): the new guest PC and
    # retired counter are produced at the top of the loop, so their
    # loop-carried — and stride-predictable — arcs span the whole body.
    b.addi("s0", "s0", 1)
    b.addi("s4", "s4", 1)
    b.add("t0", "t0", "s1")
    b.ld("t0", "t0", 0)            # fetch guest word
    b.andi("t1", "t0", 15)         # op
    b.srli("t2", "t0", 4)
    b.andi("t2", "t2", 15)         # rd
    b.srli("t3", "t0", 8)
    b.andi("t3", "t3", 15)         # rs
    b.srli("t4", "t0", 16)         # imm

    # Guest-PC trace ring (rides on the strided s4).
    b.andi("t5", "s4", 63)
    b.slli("t5", "t5", 2)
    b.add("t5", "t5", "s6")
    b.st("s0", "t5", 0)            # pc_ring[retired & 63] = next gpc

    # Compare-tree dispatch on the opcode (gcc-style switch lowering).
    b.li("t5", 4)
    b.blt("t1", "t5", "low_ops")
    b.li("t5", 6)
    b.blt("t1", "t5", "mid_ops")
    b.li("t5", 6)
    b.beq("t1", "t5", "h_st")
    b.j("h_sub")
    b.label("mid_ops")
    b.li("t5", 4)
    b.beq("t1", "t5", "h_blt")
    b.j("h_mul")
    b.label("low_ops")
    b.li("t5", 1)
    b.blt("t1", "t5", "h_halt")
    b.beq("t1", "t5", "h_li")
    b.li("t5", 2)
    b.beq("t1", "t5", "h_add")
    b.j("h_addi")

    def greg_addr(dst: str, idx_reg: str) -> None:
        b.slli(dst, idx_reg, 2)
        b.add(dst, dst, "s2")

    b.label("h_li")                # gregs[rd] = imm
    greg_addr("t5", "t2")
    b.st("t4", "t5", 0)
    b.j("advance")

    b.label("h_add")               # gregs[rd] += gregs[rs]
    greg_addr("t5", "t2")
    greg_addr("t6", "t3")
    b.ld("t6", "t6", 0)
    b.ld("t7", "t5", 0)
    b.add("t7", "t7", "t6")
    b.st("t7", "t5", 0)
    b.j("advance")

    b.label("h_sub")               # gregs[rd] -= gregs[rs]
    greg_addr("t5", "t2")
    greg_addr("t6", "t3")
    b.ld("t6", "t6", 0)
    b.ld("t7", "t5", 0)
    b.sub("t7", "t7", "t6")
    b.st("t7", "t5", 0)
    b.j("advance")

    b.label("h_addi")              # gregs[rd] += imm
    greg_addr("t5", "t2")
    b.ld("t7", "t5", 0)
    b.add("t7", "t7", "t4")
    b.st("t7", "t5", 0)
    b.j("advance")

    b.label("h_mul")               # gregs[rd] *= gregs[rs], masked
    greg_addr("t5", "t2")
    greg_addr("t6", "t3")
    b.ld("t6", "t6", 0)
    b.ld("t7", "t5", 0)
    b.mul("t7", "t7", "t6")
    b.andi("t7", "t7", 0xFFFFFF)
    b.st("t7", "t5", 0)
    b.j("advance")

    b.label("h_blt")               # if gregs[rd] < gregs[rs]: gpc = imm
    greg_addr("t5", "t2")
    greg_addr("t6", "t3")
    b.ld("t5", "t5", 0)
    b.ld("t6", "t6", 0)
    b.bge("t5", "t6", "advance")
    b.mov("s0", "t4")
    b.j("dispatch")

    b.label("h_st")                # guest_mem[gregs[rs] & 63] = gregs[rd]
    greg_addr("t5", "t2")
    greg_addr("t6", "t3")
    b.ld("t5", "t5", 0)            # value
    b.ld("t6", "t6", 0)            # index
    b.andi("t6", "t6", 63)
    b.slli("t6", "t6", 2)
    b.add("t6", "t6", "s5")
    b.st("t5", "t6", 0)
    b.j("advance")

    b.label("h_halt")
    b.j("reset")

    b.label("advance")             # s0 was already bumped at dispatch
    b.j("dispatch")

    return b.build()
