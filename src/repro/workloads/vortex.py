"""`vortex` stand-in: an object-oriented record-store transaction mix.

Character: the paper singles out `vortex` (with `m88ksim`) as the
benchmark whose predictable dependencies have the longest reach — an OO
database is full of sequential object ids, allocation cursors, journal
indices and per-type counters, all perfect strides, threaded through
transaction bodies long enough that only a wide fetch engine exposes them.
"""

from __future__ import annotations

import random

from repro.isa.builder import ProgramBuilder
from repro.isa.program import Program

N_RECORDS = 256          # record = [id, type, balance, link]; 4 words
JOURNAL_SIZE = 256
TXNS_PER_ERA = 64
N_TYPES = 4
PICKS_SIZE = 512         # precomputed transaction targets (input data)


def build_vortex(seed: int = 0) -> Program:
    """Build the record-store kernel.

    Era structure:

    1. *Create phase* — allocate all records with sequential ids,
       round-robin types and a link to the previous record of the same
       type (building per-type chains).
    2. *Transaction phase* — ``TXNS_PER_ERA`` transactions: pick a record
       from a precomputed request stream (the benchmark's input data),
       dispatch on its type (deposit / withdraw / transfer along the
       link chain / audit three links deep), update balances, bump the
       per-type counter and append the id to a wrapping journal.
    """
    b = ProgramBuilder("vortex")
    rng = random.Random(seed)
    picks = [rng.randrange(N_RECORDS) for _ in range(PICKS_SIZE)]
    picks_base = b.array(picks, "picks")
    records_base = b.alloc(N_RECORDS * 4, "records")
    journal_base = b.alloc(JOURNAL_SIZE, "journal")
    type_counts = b.alloc(N_TYPES, "type_counts")
    type_tails = b.alloc(N_TYPES, "type_tails")

    # s0 record cursor / txn counter, s1 request-stream cursor,
    # s2 &records, s3 journal cursor, s4 global txn id.
    b.li("s1", 0)
    b.li("s2", records_base)
    b.li("s3", 0)
    b.li("s4", 0)

    b.label("era")

    # -- create phase: sequential ids, striding addresses ----------------
    b.li("s0", 0)
    b.label("create_loop")
    b.slli("t0", "s0", 4)            # record stride = 16 bytes
    b.add("t0", "t0", "s2")
    b.addi("t1", "s4", 1000)         # id = txn base + index (stride)
    b.add("t1", "t1", "s0")
    b.st("t1", "t0", 0)              # .id
    b.andi("t2", "s0", N_TYPES - 1)
    b.st("t2", "t0", 4)              # .type
    b.slli("t3", "s0", 3)
    b.addi("t3", "t3", 100)
    b.st("t3", "t0", 8)              # .balance = 100 + 8*i
    # .link = previous record of same type (from type_tails), then update.
    b.slli("t4", "t2", 2)
    b.li("t5", type_tails)
    b.add("t4", "t4", "t5")
    b.ld("t5", "t4", 0)
    b.st("t5", "t0", 12)             # .link
    b.st("t0", "t4", 0)              # tail = this record
    b.addi("s0", "s0", 1)
    b.li("t6", N_RECORDS)
    b.blt("s0", "t6", "create_loop")

    # -- transaction phase ------------------------------------------------
    b.li("s0", 0)
    b.label("txn_loop")
    # Next transaction target from the request stream (cursor strides).
    b.andi("t0", "s1", PICKS_SIZE - 1)
    b.slli("t0", "t0", 2)
    b.li("t1", picks_base)
    b.add("t0", "t0", "t1")
    b.ld("t0", "t0", 0)              # record index (input data)
    b.addi("s1", "s1", 1)
    b.slli("t0", "t0", 4)
    b.add("t0", "t0", "s2")          # &record
    b.ld("t1", "t0", 4)              # type
    b.ld("t2", "t0", 8)              # balance

    # Dispatch on type.
    b.li("t3", 1)
    b.beq("t1", "zero", "txn_deposit")
    b.beq("t1", "t3", "txn_withdraw")
    b.li("t3", 2)
    b.beq("t1", "t3", "txn_transfer")
    b.j("txn_audit")

    b.label("txn_deposit")           # balance += 10 + (txn & 7)
    b.andi("t4", "s4", 7)
    b.addi("t4", "t4", 10)
    b.add("t2", "t2", "t4")
    b.st("t2", "t0", 8)
    b.j("txn_done")

    b.label("txn_withdraw")          # balance -= 5 unless it would go < 0
    b.slti("t4", "t2", 5)
    b.bne("t4", "zero", "txn_done")
    b.addi("t2", "t2", -5)
    b.st("t2", "t0", 8)
    b.j("txn_done")

    b.label("txn_transfer")          # move 8 along the link, if any
    b.ld("t4", "t0", 12)             # link
    b.beq("t4", "zero", "txn_done")
    b.addi("t2", "t2", -8)
    b.st("t2", "t0", 8)
    b.ld("t5", "t4", 8)
    b.addi("t5", "t5", 8)
    b.st("t5", "t4", 8)
    b.j("txn_done")

    b.label("txn_audit")             # sum balances three links deep
    b.li("t5", 0)
    b.li("t6", 3)
    b.mov("t4", "t0")
    b.label("audit_loop")
    b.beq("t4", "zero", "audit_done")
    b.ld("t7", "t4", 8)
    b.add("t5", "t5", "t7")
    b.ld("t4", "t4", 12)
    b.addi("t6", "t6", -1)
    b.bne("t6", "zero", "audit_loop")
    b.label("audit_done")
    b.st("t5", "t0", 8)              # stash the audit sum in balance

    b.label("txn_done")
    # Per-type counter and journal append — the stride-heavy bookkeeping.
    b.slli("t4", "t1", 2)
    b.li("t5", type_counts)
    b.add("t4", "t4", "t5")
    b.ld("t5", "t4", 0)
    b.addi("t5", "t5", 1)
    b.st("t5", "t4", 0)
    b.andi("t4", "s3", JOURNAL_SIZE - 1)
    b.slli("t4", "t4", 2)
    b.li("t5", journal_base)
    b.add("t4", "t4", "t5")
    b.ld("t6", "t0", 0)              # record id
    b.st("t6", "t4", 0)
    b.addi("s3", "s3", 1)
    b.addi("s4", "s4", 1)            # global txn id (perfect stride)
    b.addi("s0", "s0", 1)
    b.li("t6", TXNS_PER_ERA)
    b.blt("s0", "t6", "txn_loop")
    b.j("era")

    return b.build()
