"""`compress95` stand-in: adaptive LZW over a repetitive symbol stream.

Character (per the paper): data compression with data-dependent hashing —
destination values are dominated by hash probes and dictionary codes, so
value predictability is low and control flow is input-dependent.
"""

from __future__ import annotations

from repro.isa.builder import ProgramBuilder
from repro.isa.program import Program
from repro.workloads.common import build_time_text

TABLE_BITS = 10
TABLE_SIZE = 1 << TABLE_BITS
HASH_MUL = 2654435761


def build_compress(seed: int = 0, input_length: int = 512) -> Program:
    """Build the LZW kernel.

    Layout: ``input`` symbol stream, open-addressed hash table split into
    ``keys`` (0 = empty, else key+1) and ``codes``, and a wrapping output
    ring. Each era clears the table and recompresses the stream.
    """
    b = ProgramBuilder("compress")
    stream = build_time_text(seed, input_length)
    input_base = b.array(stream, "input")
    keys_base = b.alloc(TABLE_SIZE, "keys")
    codes_base = b.alloc(TABLE_SIZE, "codes")
    out_base = b.alloc(256, "out")

    # Register plan:
    # s0 input cursor, s1 input end, s2 current prefix code w,
    # s3 next free dictionary code, s4 output ring cursor,
    # t* temporaries.
    b.label("era")

    # Clear the hash-table key array.
    b.li("t0", keys_base)
    b.li("t1", keys_base + TABLE_SIZE * 4)
    b.label("clear")
    b.st("zero", "t0", 0)
    b.addi("t0", "t0", 4)
    b.blt("t0", "t1", "clear")

    b.li("s3", 256)                      # first multi-symbol code
    b.li("s4", 0)                        # output cursor
    b.li("s0", input_base)
    b.li("s1", input_base + input_length * 4)
    b.ld("s2", "s0", 0)                  # w = first symbol
    b.addi("s0", "s0", 4)

    b.label("loop")
    b.bge("s0", "s1", "flush")
    b.ld("t0", "s0", 0)                  # k = next symbol
    b.addi("s0", "s0", 4)

    # key = w * 256 + k ; stored as key + 1 so 0 means empty.
    b.slli("t1", "s2", 8)
    b.add("t1", "t1", "t0")
    b.addi("t1", "t1", 1)

    # h = (key * HASH_MUL) >> 16, masked.
    b.muli("t2", "t1", HASH_MUL)
    b.srli("t2", "t2", 16)
    b.andi("t2", "t2", TABLE_SIZE - 1)

    b.label("probe")
    b.slli("t3", "t2", 2)
    b.li("t4", keys_base)
    b.add("t3", "t3", "t4")              # &keys[h]
    b.ld("t4", "t3", 0)
    b.beq("t4", "zero", "miss")
    b.beq("t4", "t1", "hit")
    b.addi("t2", "t2", 1)
    b.andi("t2", "t2", TABLE_SIZE - 1)
    b.j("probe")

    b.label("hit")                       # w = codes[h]
    b.slli("t5", "t2", 2)
    b.li("t6", codes_base)
    b.add("t5", "t5", "t6")
    b.ld("s2", "t5", 0)
    b.j("loop")

    b.label("miss")
    # emit(w): out[s4 & 255] = w
    b.andi("t5", "s4", 255)
    b.slli("t5", "t5", 2)
    b.li("t6", out_base)
    b.add("t5", "t5", "t6")
    b.st("s2", "t5", 0)
    b.addi("s4", "s4", 1)
    # keys[h] = key+1 ; codes[h] = next_code++
    b.st("t1", "t3", 0)
    b.slli("t5", "t2", 2)
    b.li("t6", codes_base)
    b.add("t5", "t5", "t6")
    b.st("s3", "t5", 0)
    b.addi("s3", "s3", 1)
    b.mov("s2", "t0")                    # w = k
    b.j("loop")

    b.label("flush")                     # emit final w, start a new era
    b.andi("t5", "s4", 255)
    b.slli("t5", "t5", 2)
    b.li("t6", out_base)
    b.add("t5", "t5", "t6")
    b.st("s2", "t5", 0)
    b.j("era")

    return b.build()
