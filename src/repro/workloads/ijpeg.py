"""`ijpeg` stand-in: blocked 2-D transform with quantization.

Character: image compression — regular nested loops over 8x8 blocks,
butterfly add/sub/shift arithmetic and table-driven quantization.
Addresses and induction variables stride perfectly; pixel-derived values
are data-dependent.
"""

from __future__ import annotations

from repro.isa.builder import ProgramBuilder
from repro.isa.program import Program
from repro.workloads.common import build_time_stream, emit_lcg_step

IMAGE_DIM = 32           # pixels per side
BLOCK = 8


def build_ijpeg(seed: int = 0) -> Program:
    """Build the block-transform kernel.

    Each era processes the image block by block: every 8-pixel row gets a
    4-stage butterfly (sums/differences with shifts), is quantized by a
    per-column shift table, and its energy accumulates into a histogram.
    Afterwards a short LCG loop perturbs one image row in place.
    """
    b = ProgramBuilder("ijpeg")
    pixels = build_time_stream(seed, IMAGE_DIM * IMAGE_DIM, 256)
    image_base = b.array(pixels, "image")
    quant = [3, 2, 2, 1, 1, 2, 2, 3]
    quant_base = b.array(quant, "quant")
    hist_base = b.alloc(16, "hist")
    row_buffer = b.alloc(BLOCK, "rowbuf")

    # s0 block-row, s1 block-col, s2 row-in-block, s3 &row start,
    # s4 energy accumulator, s5 LCG state, s6 image base.
    b.li("s5", seed * 69069 + 7)
    b.li("s6", image_base)

    b.label("era")
    b.li("s0", 0)
    b.label("blockrow_loop")
    b.li("s1", 0)
    b.label("blockcol_loop")
    b.li("s2", 0)
    b.label("row_loop")
    # s3 = &image[(s0*8 + s2) * DIM + s1*8]
    b.slli("t0", "s0", 3)
    b.add("t0", "t0", "s2")
    b.muli("t0", "t0", IMAGE_DIM)
    b.slli("t1", "s1", 3)
    b.add("t0", "t0", "t1")
    b.slli("t0", "t0", 2)
    b.add("s3", "t0", "s6")

    # Butterfly stage 1: rowbuf[i] = x[i] + x[7-i], rowbuf[i+4] = x[i] - x[7-i].
    b.li("t0", 0)
    b.label("bfly")
    b.slli("t1", "t0", 2)
    b.add("t1", "t1", "s3")
    b.ld("t2", "t1", 0)              # x[i]
    b.li("t3", 7)
    b.sub("t3", "t3", "t0")
    b.slli("t3", "t3", 2)
    b.add("t3", "t3", "s3")
    b.ld("t3", "t3", 0)              # x[7-i]
    b.add("t4", "t2", "t3")          # sum
    b.sub("t5", "t2", "t3")          # diff
    b.slli("t6", "t0", 2)
    b.li("t7", row_buffer)
    b.add("t6", "t6", "t7")
    b.st("t4", "t6", 0)
    b.st("t5", "t6", 16)             # rowbuf[i+4]
    b.addi("t0", "t0", 1)
    b.li("t7", 4)
    b.blt("t0", "t7", "bfly")

    # Quantize and accumulate energy.
    b.li("t0", 0)
    b.li("s4", 0)
    b.label("quantize")
    b.slli("t1", "t0", 2)
    b.li("t2", row_buffer)
    b.add("t1", "t1", "t2")
    b.ld("t3", "t1", 0)
    b.slli("t4", "t0", 2)
    b.li("t5", quant_base)
    b.add("t4", "t4", "t5")
    b.ld("t4", "t4", 0)              # shift amount
    b.sra("t3", "t3", "t4")          # quantized coefficient
    b.st("t3", "t1", 0)
    # energy += |coef| approximated by coef^2 >> 4
    b.mul("t6", "t3", "t3")
    b.srli("t6", "t6", 4)
    b.add("s4", "s4", "t6")
    b.addi("t0", "t0", 1)
    b.li("t7", BLOCK)
    b.blt("t0", "t7", "quantize")

    # hist[energy & 15] += 1
    b.andi("t0", "s4", 15)
    b.slli("t0", "t0", 2)
    b.li("t1", hist_base)
    b.add("t0", "t0", "t1")
    b.ld("t1", "t0", 0)
    b.addi("t1", "t1", 1)
    b.st("t1", "t0", 0)

    b.addi("s2", "s2", 1)
    b.li("t0", BLOCK)
    b.blt("s2", "t0", "row_loop")
    b.addi("s1", "s1", 1)
    b.li("t0", IMAGE_DIM // BLOCK)
    b.blt("s1", "t0", "blockcol_loop")
    b.addi("s0", "s0", 1)
    b.li("t0", IMAGE_DIM // BLOCK)
    b.blt("s0", "t0", "blockrow_loop")

    # Perturb one pseudo-random image row so eras differ.
    emit_lcg_step(b, "s5", "t0")
    b.srli("t0", "s5", 9)
    b.andi("t0", "t0", IMAGE_DIM - 1)    # row index
    b.muli("t0", "t0", IMAGE_DIM)
    b.slli("t0", "t0", 2)
    b.add("t0", "t0", "s6")              # &image[row][0]
    b.li("t1", 0)
    b.label("perturb")
    emit_lcg_step(b, "s5", "t2")
    b.srli("t3", "s5", 11)
    b.andi("t3", "t3", 255)
    b.slli("t4", "t1", 2)
    b.add("t4", "t4", "t0")
    b.st("t3", "t4", 0)
    b.addi("t1", "t1", 1)
    b.li("t5", IMAGE_DIM)
    b.blt("t1", "t5", "perturb")
    b.j("era")

    return b.build()
