"""Construction of the predictor configurations used by the experiments."""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import ConfigError
from repro.vpred.base import ValuePredictor
from repro.vpred.classifier import ClassifiedPredictor, SaturatingClassifier
from repro.vpred.hybrid import HybridPredictor
from repro.vpred.last_value import LastValuePredictor
from repro.vpred.stride import StridePredictor, TwoDeltaStridePredictor
from repro.vpred.table import FiniteTablePredictor

_KINDS = ("stride", "last", "two-delta", "hybrid")


def make_predictor(
    kind: str = "stride",
    classified: bool = True,
    classifier_bits: int = 2,
    classifier_threshold: int = 2,
    table_sets: Optional[int] = None,
    table_assoc: int = 2,
    hints: Optional[Dict[int, str]] = None,
) -> ValuePredictor:
    """Build a predictor stack.

    The paper's default configuration — infinite stride predictor with a
    2-bit saturating-counter classification unit — is ``make_predictor()``
    with no arguments. ``table_sets`` bounds the table (None = infinite,
    the Sections 3/5 assumption).
    """
    if kind == "stride":
        predictor: ValuePredictor = StridePredictor()
    elif kind == "two-delta":
        predictor = TwoDeltaStridePredictor()
    elif kind == "last":
        predictor = LastValuePredictor()
    elif kind == "hybrid":
        predictor = HybridPredictor(hints=hints)
    else:
        raise ConfigError(f"unknown predictor kind {kind!r}; choose from {_KINDS}")

    if table_sets is not None:
        predictor = FiniteTablePredictor(predictor, table_sets, table_assoc)
    if classified:
        predictor = ClassifiedPredictor(
            predictor,
            SaturatingClassifier(bits=classifier_bits, threshold=classifier_threshold),
        )
    return predictor
