"""Finite prediction-table modelling.

The paper's limit studies assume infinite tables; this wrapper restricts
any predictor to a set-associative table budget (entries × ways with LRU
replacement) so capacity ablations can quantify how far the infinite
assumption matters.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional

from repro.errors import ConfigError
from repro.vpred.base import ValuePredictor


class FiniteTablePredictor(ValuePredictor):
    """Wraps a predictor with set-associative capacity + LRU replacement.

    A PC may only hit/train in the wrapped predictor while it owns a tag
    slot; allocating over a victim erases the victim's entry from the
    wrapped predictor (its learned state is lost, as in real hardware).
    """

    def __init__(self, predictor: ValuePredictor, n_sets: int, assoc: int = 2):
        super().__init__()
        if n_sets < 1 or n_sets & (n_sets - 1):
            raise ConfigError("n_sets must be a positive power of two")
        if assoc < 1:
            raise ConfigError("associativity must be >= 1")
        self.predictor = predictor
        self.n_sets = n_sets
        self.assoc = assoc
        # set index -> OrderedDict of resident pc -> None (LRU order).
        self._sets: Dict[int, OrderedDict] = {}
        self.evictions = 0

    @property
    def capacity(self) -> int:
        return self.n_sets * self.assoc

    def _set_index(self, pc: int) -> int:
        return (pc >> 2) & (self.n_sets - 1)

    def resident(self, pc: int) -> bool:
        """Does ``pc`` currently own a table slot?"""
        residents = self._sets.get(self._set_index(pc))
        return residents is not None and pc in residents

    def peek(self, pc: int) -> Optional[int]:
        if not self.resident(pc):
            return None
        return self.predictor.peek(pc)

    def update(self, pc: int, actual: int) -> None:
        index = self._set_index(pc)
        residents = self._sets.setdefault(index, OrderedDict())
        if pc in residents:
            residents.move_to_end(pc)
        else:
            if len(residents) >= self.assoc:
                victim, _unused = residents.popitem(last=False)
                self._erase(victim)
                self.evictions += 1
            residents[pc] = None
        self.predictor.update(pc, actual)

    def _erase(self, pc: int) -> None:
        """Drop the wrapped predictor's learned state for an evicted PC."""
        for attr in ("_entries", "_last"):
            table = getattr(self.predictor, attr, None)
            if table is not None:
                table.pop(pc, None)

    def _reset_state(self) -> None:
        self.predictor.reset()
        self._sets.clear()
        self.evictions = 0
