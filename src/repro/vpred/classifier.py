"""Saturating-counter classification of prediction confidence.

The paper (after [14], [8]) guards every value prediction with a set of
saturating counters: a prediction is only *used* when the counter for
that instruction has enough confidence; the counter trains on the raw
predictor's correctness whether or not the prediction was used.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import ConfigError
from repro.vpred.base import PredictorStats, ValuePredictor


class SaturatingClassifier:
    """Per-PC n-bit saturating counters with a use threshold."""

    def __init__(self, bits: int = 2, threshold: int = 2, initial: int = 0):
        if bits < 1:
            raise ConfigError("classifier needs at least 1 bit")
        self.max_value = (1 << bits) - 1
        if not 0 <= threshold <= self.max_value:
            raise ConfigError(
                f"threshold {threshold} outside [0, {self.max_value}]"
            )
        if not 0 <= initial <= self.max_value:
            raise ConfigError("initial counter value out of range")
        self.bits = bits
        self.threshold = threshold
        self.initial = initial
        self._counters: Dict[int, int] = {}

    def allows(self, pc: int) -> bool:
        """Should the prediction for ``pc`` be used this time?"""
        return self._counters.get(pc, self.initial) >= self.threshold

    def counter(self, pc: int) -> int:
        """Current counter value for ``pc``."""
        return self._counters.get(pc, self.initial)

    def train(self, pc: int, correct: bool) -> None:
        """Saturating increment on correct, decrement on incorrect."""
        value = self._counters.get(pc, self.initial)
        if correct:
            value = min(value + 1, self.max_value)
        else:
            value = max(value - 1, 0)
        self._counters[pc] = value

    def reset(self) -> None:
        self._counters.clear()


class ClassifiedPredictor(ValuePredictor):
    """A raw predictor gated by a :class:`SaturatingClassifier`.

    ``peek`` returns a value only when the classifier trusts the PC;
    ``update`` trains both the table and the counter (against the raw
    prediction, so confidence can rebuild while predictions are held
    back).
    """

    def __init__(self, predictor: ValuePredictor, classifier: SaturatingClassifier):
        super().__init__()
        self.predictor = predictor
        self.classifier = classifier

    def peek(self, pc: int) -> Optional[int]:
        if not self.classifier.allows(pc):
            return None
        return self.predictor.peek(pc)

    def update(self, pc: int, actual: int) -> None:
        raw = self.predictor.peek(pc)
        if raw is not None:
            self.classifier.train(pc, raw == actual)
        self.predictor.update(pc, actual)

    def _reset_state(self) -> None:
        self.predictor.reset()
        self.classifier.reset()

    @property
    def raw_stats(self) -> PredictorStats:
        """Stats of the underlying (unclassified) predictor."""
        return self.predictor.stats
