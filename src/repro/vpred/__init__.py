"""Value predictors: last-value, stride, 2-delta stride and hybrid, plus
the saturating-counter classification unit and finite-table modelling.

The paper's Section 3/5 configuration is an (infinite) stride predictor
guarded by a 2-bit saturating-counter classifier; the hybrid predictor
with profiling hints reproduces the design of reference [9] that
Section 4 recommends for the banked hardware.
"""

from repro.vpred.base import ValuePredictor, PredictorStats
from repro.vpred.last_value import LastValuePredictor
from repro.vpred.stride import StridePredictor, TwoDeltaStridePredictor
from repro.vpred.classifier import SaturatingClassifier, ClassifiedPredictor
from repro.vpred.table import FiniteTablePredictor
from repro.vpred.hybrid import HybridPredictor, profile_hints
from repro.vpred.factory import make_predictor

__all__ = [
    "ValuePredictor",
    "PredictorStats",
    "LastValuePredictor",
    "StridePredictor",
    "TwoDeltaStridePredictor",
    "SaturatingClassifier",
    "ClassifiedPredictor",
    "FiniteTablePredictor",
    "HybridPredictor",
    "profile_hints",
    "make_predictor",
]
