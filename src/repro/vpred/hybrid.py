"""Hybrid last-value + stride predictor with opcode hints (reference [9]).

Section 4 recommends this organization for the banked hardware: a large
last-value table, a small stride table, and compiler/profiling hints
steering each static instruction to one of them (or to neither, which
also unloads the address router by removing non-candidates).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.trace.trace import Trace
from repro.vpred.base import ValuePredictor
from repro.vpred.last_value import LastValuePredictor
from repro.vpred.stride import StridePredictor

Hint = str  # "stride" | "last" | "none"

HINT_STRIDE = "stride"
HINT_LAST = "last"
HINT_NONE = "none"


def profile_hints(
    trace: Trace,
    stride_threshold: float = 0.7,
    last_threshold: float = 0.7,
) -> Dict[int, Hint]:
    """Profile a training trace into per-PC hints (the role of [9]).

    For every static value-producing PC, measure how often an oracle
    stride / last-value predictor would have been right, then classify:
    ``stride`` beats ``last`` only when strictly better, mirroring the
    paper's note that few instructions truly need the stride table.
    """
    last_value: Dict[int, int] = {}
    stride_state: Dict[int, Tuple[int, Optional[int]]] = {}
    hits_last: Dict[int, int] = {}
    hits_stride: Dict[int, int] = {}
    occurrences: Dict[int, int] = {}

    for record in trace:
        if record.dest is None:
            continue
        pc, actual = record.pc, record.value
        occurrences[pc] = occurrences.get(pc, 0) + 1
        if pc in last_value and last_value[pc] == actual:
            hits_last[pc] = hits_last.get(pc, 0) + 1
        if pc in stride_state:
            last, stride = stride_state[pc]
            predicted = last if stride is None else (last + stride) & ((1 << 64) - 1)
            if predicted == actual:
                hits_stride[pc] = hits_stride.get(pc, 0) + 1
            stride_state[pc] = (actual, (actual - last) & ((1 << 64) - 1))
        else:
            stride_state[pc] = (actual, None)
        last_value[pc] = actual

    hints: Dict[int, Hint] = {}
    for pc, count in occurrences.items():
        if count < 2:
            hints[pc] = HINT_NONE
            continue
        rate_last = hits_last.get(pc, 0) / count
        rate_stride = hits_stride.get(pc, 0) / count
        if rate_stride >= stride_threshold and rate_stride > rate_last:
            hints[pc] = HINT_STRIDE
        elif rate_last >= last_threshold:
            hints[pc] = HINT_LAST
        else:
            hints[pc] = HINT_NONE
    return hints


class HybridPredictor(ValuePredictor):
    """Last-value table + stride table, steered by per-PC hints.

    A PC with no hint defaults to the last-value table (hardware would
    classify it dynamically); a ``none`` hint suppresses prediction
    entirely.
    """

    def __init__(self, hints: Optional[Dict[int, Hint]] = None):
        super().__init__()
        self.hints = hints or {}
        self.last_table = LastValuePredictor()
        self.stride_table = StridePredictor()

    def hint_for(self, pc: int) -> Hint:
        return self.hints.get(pc, HINT_LAST)

    def peek(self, pc: int) -> Optional[int]:
        hint = self.hint_for(pc)
        if hint == HINT_NONE:
            return None
        if hint == HINT_STRIDE:
            return self.stride_table.peek(pc)
        return self.last_table.peek(pc)

    def entry(self, pc: int) -> Optional[Tuple[int, int]]:
        """(last, stride) when this PC lives in the stride table.

        Last-value-steered PCs report stride 0: the value distributor
        then replicates the same value to merged requests without any
        adder work — the Section 4 argument for the hybrid organization.
        """
        hint = self.hint_for(pc)
        if hint == HINT_NONE:
            return None
        if hint == HINT_STRIDE:
            return self.stride_table.entry(pc)
        last = self.last_table.peek(pc)
        if last is None:
            return None
        return (last, 0)

    def update(self, pc: int, actual: int) -> None:
        hint = self.hint_for(pc)
        if hint == HINT_NONE:
            return
        if hint == HINT_STRIDE:
            self.stride_table.update(pc, actual)
        else:
            self.last_table.update(pc, actual)

    def _reset_state(self) -> None:
        self.last_table.reset()
        self.stride_table.reset()
