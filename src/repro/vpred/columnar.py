"""Vectorized value-prediction planning over a columnar trace.

For the infinite-table predictors keyed exactly by PC (last-value,
stride, and either wrapped in a :class:`SaturatingClassifier`), the
whole :func:`~repro.core.vp_plan.plan_value_predictions` pass can be
computed from the value history of each PC group:

* occurrence ``k`` of a PC predicts nothing for ``k == 0``, the previous
  value for ``k == 1`` (stride entries degenerate to last-value until a
  stride exists), and ``v[k-1] + (v[k-1] - v[k-2])`` mod ``2**64`` for
  ``k >= 2`` under stride prediction;
* the classifier is a per-group saturating-counter scan over those raw
  outcomes — sequential, so it runs in the compiled kernel
  (:mod:`repro.core._native`) or a tight Python loop.

The pass mutates the predictor exactly like the reference loop would:
statistics are incremented by the same totals and the final table /
counter state is reconstructed entry-for-entry (including dict insertion
order), so a subsequent warm-state run — or a test comparing predictor
internals — cannot tell the backends apart.  Unsupported predictor
types, warm predictors, or a non-numpy columnar view return ``None``
and the caller falls back to the reference loop.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.vpred.classifier import ClassifiedPredictor, SaturatingClassifier
from repro.vpred.last_value import LastValuePredictor
from repro.vpred.stride import StridePredictor

try:
    import numpy as np
except ImportError:  # pragma: no cover - columnar view is list-backed then
    np = None  # type: ignore[assignment]

_MASK64 = (1 << 64) - 1


def _classify(predictor) -> Optional[Tuple[str, object, Optional[SaturatingClassifier]]]:
    """(kind, inner, classifier) for supported predictors, else None.

    Exact-type checks on purpose: subclasses may override behavior the
    closed-form history reconstruction does not model.
    """
    if type(predictor) is LastValuePredictor:
        return ("last", predictor, None)
    if type(predictor) is StridePredictor:
        return ("stride", predictor, None)
    if type(predictor) is ClassifiedPredictor:
        inner = predictor.predictor
        classifier = predictor.classifier
        if type(classifier) is not SaturatingClassifier:
            return None
        if type(inner) is LastValuePredictor:
            return ("last", inner, classifier)
        if type(inner) is StridePredictor:
            return ("stride", inner, classifier)
    return None


def _is_cold(kind: str, inner, classifier) -> bool:
    """True when the predictor carries no table state (reconstruction
    below assumes every group's history starts empty)."""
    if len(inner) != 0:
        return False
    if classifier is not None and classifier._counters:
        return False
    return True


def _satcounter_python(
    gid: List[int], raw_ok: List[bool], has_raw: List[bool],
    n_groups: int, max_value: int, threshold: int, initial: int,
) -> Tuple[List[bool], List[int]]:
    counters = [initial] * n_groups
    allowed = [False] * len(gid)
    for k, g in enumerate(gid):
        c = counters[g]
        allowed[k] = c >= threshold
        if has_raw[k]:
            if raw_ok[k]:
                if c < max_value:
                    counters[g] = c + 1
            elif c > 0:
                counters[g] = c - 1
    return allowed, counters


def vectorized_plan(cols, predictor):
    """Run ``predictor`` over the producers of ``cols`` in closed form.

    Returns ``(attempted, correct)`` as numpy bool arrays of length
    ``cols.n`` — or ``None`` when this predictor/trace combination must
    use the reference loop.  On success the predictor's statistics and
    table state end up exactly as the reference loop would leave them.
    """
    if np is None or not getattr(cols, "vec", False):
        return None
    supported = _classify(predictor)
    if supported is None:
        return None
    kind, inner, classifier = supported
    if not _is_cold(kind, inner, classifier):
        return None

    n = cols.n
    pidx = np.flatnonzero(cols.writes)
    nprod = int(pidx.size)
    attempted = np.zeros(n, dtype=bool)
    correct = np.zeros(n, dtype=bool)
    if nprod == 0:
        return attempted, correct

    pcs = cols.pc[pidx]
    vals = cols.value[pidx]
    uniq, gid = np.unique(pcs, return_inverse=True)
    gid = gid.astype(np.int64, copy=False)
    n_groups = int(uniq.size)

    order = np.argsort(gid, kind="stable")
    v_sorted = vals[order]
    counts = np.bincount(gid, minlength=n_groups)
    ends = np.cumsum(counts)
    starts = ends - counts
    occ_sorted = np.arange(nprod, dtype=np.int64) - np.repeat(starts, counts)

    vprev = np.empty_like(v_sorted)
    vprev[0] = 0
    vprev[1:] = v_sorted[:-1]
    has_raw_sorted = occ_sorted >= 1
    if kind == "last":
        raw_sorted = vprev
    else:
        vprev2 = np.empty_like(v_sorted)
        vprev2[:2] = 0
        vprev2[2:] = v_sorted[:-2]
        # uint64 arithmetic wraps mod 2**64 — the predictors' mask.
        stride_raw = vprev + vprev - vprev2
        raw_sorted = np.where(occ_sorted >= 2, stride_raw, vprev)
    raw_ok_sorted = has_raw_sorted & (raw_sorted == v_sorted)

    inv = np.empty_like(order)
    inv[order] = np.arange(nprod)
    has_raw = has_raw_sorted[inv]
    raw_ok = raw_ok_sorted[inv]
    occ = occ_sorted[inv]
    gid_trace = gid

    if classifier is None:
        att_p = has_raw
        cor_p = raw_ok
        final_counters = None
    else:
        from repro.core._native import native_kernels
        kernels = native_kernels()
        if kernels is not None:
            counters = np.full(n_groups, classifier.initial, dtype=np.int64)
            allowed = np.empty(nprod, dtype=np.uint8)
            kernels.satcounter(
                nprod, gid_trace,
                np.ascontiguousarray(raw_ok, dtype=np.uint8),
                np.ascontiguousarray(has_raw, dtype=np.uint8),
                classifier.max_value, classifier.threshold,
                counters, allowed,
            )
            allowed_arr = allowed.astype(bool)
            final_counters = counters.tolist()
        else:
            allowed_l, final_counters = _satcounter_python(
                gid_trace.tolist(), raw_ok.tolist(), has_raw.tolist(),
                n_groups, classifier.max_value, classifier.threshold,
                classifier.initial,
            )
            allowed_arr = np.array(allowed_l, dtype=bool)
        att_p = allowed_arr & has_raw
        cor_p = att_p & raw_ok

    attempted[pidx[att_p]] = True
    correct[pidx[cor_p]] = True

    # -- statistics: same totals the per-lookup path accumulates -------
    stats = predictor.stats
    stats.lookups += nprod
    stats.predictions += int(att_p.sum())
    stats.correct += int(cor_p.sum())

    # -- final table state, in reference insertion order ---------------
    pcs_py = uniq.tolist()
    last_py = v_sorted[ends - 1].tolist()
    counts_py = counts.tolist()
    first_groups = gid_trace[occ == 0].tolist()
    if kind == "last":
        table = inner._last
        for g in first_groups:
            table[pcs_py[g]] = last_py[g]
    else:
        prev_last = np.where(counts >= 2, v_sorted[ends - 2], 0)
        stride_py = (v_sorted[ends - 1] - prev_last).tolist()
        entries = inner._entries
        for g in first_groups:
            if counts_py[g] == 1:
                entries[pcs_py[g]] = (last_py[g], None)
            else:
                entries[pcs_py[g]] = (last_py[g], stride_py[g])
    if classifier is not None:
        # Counters exist only for PCs whose raw predictor offered at
        # least one value (second occurrence onward), inserted in
        # first-training order.
        cdict = classifier._counters
        for g in gid_trace[occ == 1].tolist():
            cdict[pcs_py[g]] = final_counters[g]
    return attempted, correct
