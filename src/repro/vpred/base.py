"""Predictor interface and accuracy bookkeeping."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional


@dataclass
class PredictorStats:
    """Counts accumulated by :meth:`ValuePredictor.lookup_and_update`."""

    lookups: int = 0
    predictions: int = 0   # lookups that returned a value
    correct: int = 0       # predictions matching the actual outcome

    @property
    def coverage(self) -> float:
        """Fraction of lookups for which a prediction was offered."""
        return self.predictions / self.lookups if self.lookups else 0.0

    @property
    def accuracy(self) -> float:
        """Fraction of offered predictions that were correct."""
        return self.correct / self.predictions if self.predictions else 0.0


class ValuePredictor(abc.ABC):
    """A per-PC value predictor.

    The trace-driven protocol is :meth:`lookup_and_update`: look the PC
    up, then update the entry with the actual outcome — the paper's
    "speculative update after lookup, corrected as soon as the value is
    known" collapses to exactly this in a correct-path trace simulation.
    :meth:`peek` is a side-effect-free lookup used by the Section 4
    hardware model, which must read table state without consuming the
    per-cycle update.
    """

    def __init__(self):
        self.stats = PredictorStats()

    @abc.abstractmethod
    def peek(self, pc: int) -> Optional[int]:
        """The value this predictor would predict for ``pc``, or None."""

    @abc.abstractmethod
    def update(self, pc: int, actual: int) -> None:
        """Record the actual outcome of the instruction at ``pc``."""

    def lookup_and_update(self, pc: int, actual: int) -> Optional[int]:
        """Predict, record stats, then train on ``actual``."""
        predicted = self.peek(pc)
        self.stats.lookups += 1
        if predicted is not None:
            self.stats.predictions += 1
            if predicted == actual:
                self.stats.correct += 1
        self.update(pc, actual)
        return predicted

    def reset(self) -> None:
        """Clear all table state and statistics."""
        self.stats = PredictorStats()
        self._reset_state()

    @abc.abstractmethod
    def _reset_state(self) -> None:
        """Clear table state (stats handled by :meth:`reset`)."""
