"""Last-value prediction (Lipasti et al. [13], [14])."""

from __future__ import annotations

from typing import Dict, Optional

from repro.vpred.base import ValuePredictor


class LastValuePredictor(ValuePredictor):
    """Predicts that an instruction repeats its most recent result."""

    def __init__(self):
        super().__init__()
        self._last: Dict[int, int] = {}

    def peek(self, pc: int) -> Optional[int]:
        return self._last.get(pc)

    def update(self, pc: int, actual: int) -> None:
        self._last[pc] = actual

    def _reset_state(self) -> None:
        self._last.clear()

    def __len__(self) -> int:
        return len(self._last)
