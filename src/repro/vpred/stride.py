"""Stride value prediction (Gabbay & Mendelson [7], [8]).

The table entry keeps the most recent value and the delta between the
two most recent values; the prediction is ``last + stride``. The
:class:`TwoDeltaStridePredictor` variant only commits a new stride after
seeing it twice in a row, which filters transient deltas.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.vpred.base import ValuePredictor

_MASK64 = (1 << 64) - 1


class StridePredictor(ValuePredictor):
    """Classic stride predictor: entry = (last value, stride)."""

    def __init__(self):
        super().__init__()
        # pc -> (last_value, stride); stride is None until 2nd sighting.
        self._entries: Dict[int, Tuple[int, Optional[int]]] = {}

    def peek(self, pc: int) -> Optional[int]:
        entry = self._entries.get(pc)
        if entry is None:
            return None
        last, stride = entry
        if stride is None:
            return last  # degenerate to last-value until a stride exists
        return (last + stride) & _MASK64

    def entry(self, pc: int) -> Optional[Tuple[int, int]]:
        """(last value, stride) for the Section 4 value distributor.

        The distributor expands a merged request into last+stride,
        last+2*stride, ...; a missing or stride-less entry returns None.
        """
        entry = self._entries.get(pc)
        if entry is None or entry[1] is None:
            return None
        return entry

    def update(self, pc: int, actual: int) -> None:
        entry = self._entries.get(pc)
        if entry is None:
            self._entries[pc] = (actual, None)
        else:
            last, _old = entry
            self._entries[pc] = (actual, (actual - last) & _MASK64)

    def _reset_state(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


class TwoDeltaStridePredictor(ValuePredictor):
    """Stride predictor that requires the same delta twice to retrain.

    Entry: (last, committed stride, candidate stride). The committed
    stride only changes when the candidate repeats, so a single
    out-of-pattern value (a loop exit, a reload) does not destroy an
    established stride.
    """

    def __init__(self):
        super().__init__()
        self._entries: Dict[int, Tuple[int, Optional[int], Optional[int]]] = {}

    def peek(self, pc: int) -> Optional[int]:
        entry = self._entries.get(pc)
        if entry is None:
            return None
        last, stride, _candidate = entry
        if stride is None:
            return last
        return (last + stride) & _MASK64

    def entry(self, pc: int) -> Optional[Tuple[int, int]]:
        """(last, committed stride) or None — see StridePredictor.entry."""
        entry = self._entries.get(pc)
        if entry is None or entry[1] is None:
            return None
        return entry[0], entry[1]

    def update(self, pc: int, actual: int) -> None:
        entry = self._entries.get(pc)
        if entry is None:
            self._entries[pc] = (actual, None, None)
            return
        last, stride, candidate = entry
        delta = (actual - last) & _MASK64
        if stride is None:
            # First delta commits immediately (matches StridePredictor
            # warm-up so the two predictors differ only in re-training).
            self._entries[pc] = (actual, delta, delta)
        elif delta == stride:
            self._entries[pc] = (actual, stride, stride)
        elif candidate is not None and delta == candidate:
            self._entries[pc] = (actual, delta, delta)
        else:
            self._entries[pc] = (actual, stride, delta)

    def _reset_state(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)
