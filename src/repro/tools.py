"""``repro-trace`` — workload/trace inspection from the command line.

Subcommands:

* ``stats <workload>``   — trace statistics (mix, branch density...)
* ``dump <workload>``    — write the trace to a file (or stdout)
* ``disasm <workload>``  — disassemble the workload's static code
* ``did <workload>``     — DID summary of the trace
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.cliutil import positive_int
from repro.dfg import DIDHistogram, average_did, build_dfg
from repro.isa import disassemble
from repro.trace import compute_stats, write_trace
from repro.workloads import WORKLOAD_NAMES, build_workload, generate_trace


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Inspect the repro workloads and their traces.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add(name: str, help_text: str) -> argparse.ArgumentParser:
        command = sub.add_parser(name, help=help_text)
        command.add_argument("workload", choices=WORKLOAD_NAMES)
        command.add_argument("--length", type=positive_int, default=10_000)
        command.add_argument("--seed", type=int, default=0)
        return command

    add("stats", "print trace statistics")
    dump = add("dump", "serialize the trace")
    dump.add_argument("--output", "-o", default="-",
                      help="output path ('-' = stdout)")
    add("did", "print the DID summary")
    disasm = sub.add_parser("disasm", help="disassemble the static code")
    disasm.add_argument("workload", choices=WORKLOAD_NAMES)
    disasm.add_argument("--seed", type=int, default=0)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "disasm":
        print(disassemble(build_workload(args.workload, seed=args.seed)))
        return 0

    trace = generate_trace(args.workload, length=args.length, seed=args.seed)
    if args.command == "stats":
        print(compute_stats(trace).format())
    elif args.command == "dump":
        if args.output == "-":
            write_trace(trace, sys.stdout)
        else:
            write_trace(trace, args.output)
            print(f"wrote {len(trace)} records to {args.output}",
                  file=sys.stderr)
    elif args.command == "did":
        graph = build_dfg(trace)
        histogram = DIDHistogram.from_graph(graph)
        print(f"{args.workload}: {graph.n_arcs} arcs, "
              f"average DID {average_did(graph):.2f}")
        for label, fraction in zip(histogram.labels(), histogram.fractions()):
            print(f"  DID {label:<6} {fraction:6.1%}")
        print(f"  DID >= 4   {histogram.fraction_at_least(4):6.1%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
