"""The unit of parallel experiment work: cells and experiment specs.

A **cell** is one point of an experiment's workload × configuration
grid: a picklable, module-level function plus keyword arguments, whose
return value is JSON-serializable. Cells are what the engine ships to
worker processes and what the on-disk cache memoizes, so both the
function and its arguments must survive ``pickle`` and the value must
survive ``json``.

An **experiment spec** ties an experiment id to its grid: ``cells``
enumerates the grid for a given scale, ``assemble`` folds the cell
values (in grid order) back into the :class:`ExperimentResult` table
the serial ``run()`` functions produce. ``assemble(serial_values)``
over serially executed cells must be byte-for-byte identical to the
parallel path — that equivalence is what licenses ``--jobs N``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.analysis.report import ExperimentResult


@dataclass(frozen=True)
class Cell:
    """One schedulable grid point of an experiment."""

    experiment_id: str
    cell_id: str
    func: Callable[..., Any]
    kwargs: Dict[str, Any] = field(default_factory=dict)

    def compute(self) -> Any:
        return self.func(**self.kwargs)


@dataclass(frozen=True)
class ExperimentSpec:
    """An experiment as the engine sees it: a grid plus an assembler.

    ``cells(trace_length, seed, workloads)`` enumerates the grid;
    ``assemble(values, trace_length, seed)`` receives
    ``{cell_id: value}`` in grid order and rebuilds the result table.
    """

    experiment_id: str
    cells: Callable[[int, int, Optional[Sequence[str]]], List[Cell]]
    assemble: Callable[[Dict[str, Any], int, int], ExperimentResult]


# -- generic single-cell wrapping ------------------------------------------
#
# Experiments without a cellized grid (the ablations) still run under
# the engine as one cell each: the whole ``run()`` executes in a worker
# and its ExperimentResult travels as a dict. Coarse, but it lets
# ``repro-experiments --jobs N`` fan out *across* such experiments and
# memoize them whole.

def run_experiment_as_cell(run: Callable[..., ExperimentResult],
                           trace_length: int, seed: int,
                           workloads: Optional[Sequence[str]] = None) -> dict:
    """Cell function executing a legacy ``run()`` whole (picklable)."""
    kwargs: Dict[str, Any] = {"trace_length": trace_length, "seed": seed}
    if workloads is not None:
        kwargs["workloads"] = list(workloads)
    return run(**kwargs).to_dict()


def single_cell_spec(
    experiment_id: str,
    run: Callable[..., ExperimentResult],
    accepts_workloads: bool = True,
) -> ExperimentSpec:
    """Wrap a legacy ``run()`` function as a one-cell experiment spec."""

    def cells(trace_length: int, seed: int,
              workloads: Optional[Sequence[str]] = None) -> List[Cell]:
        kwargs: Dict[str, Any] = {
            "run": run, "trace_length": trace_length, "seed": seed,
        }
        if accepts_workloads and workloads is not None:
            kwargs["workloads"] = list(workloads)
        return [Cell(experiment_id, "all", run_experiment_as_cell, kwargs)]

    def assemble(values: Dict[str, Any], trace_length: int,
                 seed: int) -> ExperimentResult:
        return ExperimentResult.from_dict(values["all"])

    return ExperimentSpec(experiment_id, cells, assemble)
