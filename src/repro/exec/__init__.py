"""Parallel experiment execution with an on-disk artifact cache.

* :mod:`repro.exec.cache` — content-keyed disk cache for generated
  traces (keyed by workload/length/seed/generator-version) and for
  completed experiment cells.
* :mod:`repro.exec.cells` — the cell/spec data model: experiments as
  picklable workload × configuration grids.
* :mod:`repro.exec.engine` — the fan-out engine (ProcessPoolExecutor,
  memoization, per-cell observability).
* :mod:`repro.exec.artifacts` — JSON manifest/metrics emission.
"""

from repro.exec.cache import (
    CELL_SCHEMA_VERSION,
    CacheStats,
    DiskCache,
    activate,
    activated,
    active_cache,
    compute_cell_key,
    deactivate,
    default_cache_dir,
    fetch_trace,
)
from repro.exec.cells import Cell, ExperimentSpec, single_cell_spec
from repro.exec.engine import (
    CellExecution,
    CellOutcome,
    EngineReport,
    ExperimentEngine,
    execute_cell,
    probe_cell,
)
from repro.exec.artifacts import MANIFEST_SCHEMA_VERSION, write_artifacts

__all__ = [
    "CELL_SCHEMA_VERSION",
    "MANIFEST_SCHEMA_VERSION",
    "CacheStats",
    "Cell",
    "CellExecution",
    "CellOutcome",
    "DiskCache",
    "EngineReport",
    "ExperimentEngine",
    "ExperimentSpec",
    "activate",
    "activated",
    "active_cache",
    "compute_cell_key",
    "deactivate",
    "default_cache_dir",
    "execute_cell",
    "fetch_trace",
    "probe_cell",
    "single_cell_spec",
    "write_artifacts",
]
