"""Structured JSON artifacts for engine runs.

Layout under ``--json <dir>``::

    manifest.json     deterministic run description: scale, versions,
                      per-experiment artifact file + sha256 digest
    <experiment>.json deterministic per-experiment artifact: the result
                      table plus every cell's id and value, grid order
    metrics.json      volatile observability: per-cell wall time /
                      worker / cache traffic, hit-miss counters, worker
                      utilization

Determinism is a contract: ``manifest.json`` and the per-experiment
files depend only on (experiments, trace length, seed, code version) —
never on timing, worker count or cache state — so ``--jobs 1`` and
``--jobs N`` runs of the same scale produce byte-identical copies.
Everything timing-dependent lives in ``metrics.json``.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Union

from repro.exec.cache import CELL_SCHEMA_VERSION
from repro.exec.engine import EngineReport
from repro.workloads import GENERATOR_VERSION

MANIFEST_SCHEMA_VERSION = 1


def _dump(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True, indent=2) + "\n"


def _experiment_filename(experiment_id: str) -> str:
    return f"{experiment_id}.json"


def write_artifacts(report: EngineReport, out_dir: Union[str, Path]) -> Path:
    """Write manifest + per-experiment results + metrics; returns the
    manifest path."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)

    experiments: Dict[str, dict] = {}
    by_experiment: Dict[str, List] = {}
    for outcome in report.outcomes:
        by_experiment.setdefault(outcome.experiment_id, []).append(outcome)

    for experiment_id, outcomes in by_experiment.items():
        entry: Dict[str, object] = {"n_cells": len(outcomes)}
        if experiment_id in report.results:
            payload = {
                "experiment_id": experiment_id,
                "result": report.results[experiment_id].to_dict(),
                "cells": [
                    {"cell_id": o.cell_id, "value": o.value} for o in outcomes
                ],
            }
            text = _dump(payload)
            filename = _experiment_filename(experiment_id)
            (out / filename).write_text(text)
            entry["status"] = "ok"
            entry["file"] = filename
            entry["sha256"] = hashlib.sha256(text.encode()).hexdigest()
        else:
            entry["status"] = "failed"
            entry["errors"] = report.errors.get(experiment_id, [])
        experiments[experiment_id] = entry

    manifest = {
        "schema_version": MANIFEST_SCHEMA_VERSION,
        "generator_version": GENERATOR_VERSION,
        "cell_schema_version": CELL_SCHEMA_VERSION,
        "trace_length": report.trace_length,
        "seed": report.seed,
        "experiments": experiments,
        "metrics_file": "metrics.json",
    }
    manifest_path = out / "manifest.json"
    manifest_path.write_text(_dump(manifest))

    trace_hits = sum(o.trace_hits for o in report.outcomes)
    trace_misses = sum(o.trace_misses for o in report.outcomes)
    metrics = {
        "jobs": report.jobs,
        "span_seconds": report.span_seconds,
        "utilization": report.utilization(),
        "recoveries": report.recoveries,
        "workers": report.worker_busy_seconds(),
        "cache": dict(
            report.cache_stats,
            worker_trace_hits=trace_hits,
            worker_trace_misses=trace_misses,
        ),
        "cells": report.cell_metrics(),
    }
    (out / "metrics.json").write_text(_dump(metrics))
    return manifest_path
