"""The parallel experiment-execution engine.

Fans an experiment's workload × configuration cells out over a
:class:`~concurrent.futures.ProcessPoolExecutor` (``jobs > 1``) or runs
them serially in-process (``jobs == 1`` — the path that keeps
module-level hooks such as :mod:`repro.verify`'s checked mode working,
since those hooks do not cross process boundaries).

Completed cells are memoized in the on-disk cache, so a re-run — or a
run resumed after a partial failure — recomputes only what is missing.
Every cell execution is timed and tagged with the worker that ran it
and the trace-cache traffic it caused; :mod:`repro.exec.artifacts`
turns the report into JSON manifests.

Cell values are deterministic functions of their arguments and cells
are assembled in grid order, so ``--jobs 1`` and ``--jobs N`` produce
identical results (and byte-identical artifact files).
"""

from __future__ import annotations

import os
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.report import ExperimentResult
from repro.exec import cache as cache_mod
from repro.exec.cache import DiskCache
from repro.exec.cells import Cell, ExperimentSpec


@dataclass(frozen=True)
class CellExecution:
    """One raw cell execution: value or error, plus observability.

    What :func:`execute_cell` returns — in-process or across the pickle
    boundary from a pool worker. Both the engine and the serve daemon
    (:mod:`repro.serve`) consume it, so anything that can run a cell
    reports timing and cache traffic the same way.
    """

    value: Any
    error: Optional[str]
    wall_time: float
    worker: str
    trace_hits: int = 0
    trace_misses: int = 0

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class CellOutcome:
    """What happened to one cell: its value or error, plus observability."""

    experiment_id: str
    cell_id: str
    value: Any = None
    error: Optional[str] = None
    wall_time: float = 0.0
    memoized: bool = False
    worker: str = "serial"
    trace_hits: int = 0
    trace_misses: int = 0

    @property
    def ok(self) -> bool:
        return self.error is None

    @classmethod
    def from_execution(
        cls, cell: Cell, execution: CellExecution, worker: Optional[str] = None
    ) -> "CellOutcome":
        """Attach a raw :class:`CellExecution` to its cell's identity."""
        return cls(
            cell.experiment_id,
            cell.cell_id,
            value=execution.value,
            error=execution.error,
            wall_time=execution.wall_time,
            worker=worker if worker is not None else execution.worker,
            trace_hits=execution.trace_hits,
            trace_misses=execution.trace_misses,
        )

    def metrics_row(self) -> Dict[str, Any]:
        """The volatile per-cell timing record (one schema everywhere).

        This is the row ``metrics.json`` quarantines, the runner's
        per-experiment summary folds, and the serve daemon's ``stats``
        endpoint reports as ``recent_cells`` — one code path, so the
        observability schema cannot drift between consumers.
        """
        return {
            "experiment_id": self.experiment_id,
            "cell_id": self.cell_id,
            "wall_time": self.wall_time,
            "memoized": self.memoized,
            "worker": self.worker,
            "ok": self.ok,
            "trace_hits": self.trace_hits,
            "trace_misses": self.trace_misses,
        }


@dataclass
class EngineReport:
    """Everything one engine run produced."""

    trace_length: int
    seed: int
    jobs: int
    results: Dict[str, ExperimentResult] = field(default_factory=dict)
    errors: Dict[str, List[str]] = field(default_factory=dict)
    outcomes: List[CellOutcome] = field(default_factory=list)
    span_seconds: float = 0.0
    cache_stats: Dict[str, int] = field(default_factory=dict)
    # Fault-recovery events (e.g. a BrokenProcessPool mid-run): each is
    # a dict describing what broke and how the run continued. Quarantined
    # in metrics.json with the rest of the volatile observability.
    recoveries: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    def worker_busy_seconds(self) -> Dict[str, float]:
        busy: Dict[str, float] = {}
        for outcome in self.outcomes:
            if outcome.memoized:
                continue
            busy[outcome.worker] = busy.get(outcome.worker, 0.0) + outcome.wall_time
        return busy

    def cell_metrics(self) -> List[Dict[str, Any]]:
        """Per-cell volatile timing rows (the ``metrics.json`` schema)."""
        return [outcome.metrics_row() for outcome in self.outcomes]

    def experiment_timing(self, experiment_id: str) -> Dict[str, Any]:
        """One experiment's timing summary, folded from the same
        per-cell rows the artifacts and the serve daemon report."""
        rows = [
            row for row in self.cell_metrics()
            if row["experiment_id"] == experiment_id
        ]
        return {
            "cells": len(rows),
            "busy_seconds": sum(float(row["wall_time"]) for row in rows),
            "memoized": sum(1 for row in rows if row["memoized"]),
        }

    def utilization(self) -> float:
        """Busy worker-seconds over available worker-seconds."""
        if self.span_seconds <= 0.0 or self.jobs <= 0:
            return 0.0
        busy = sum(self.worker_busy_seconds().values())
        return busy / (self.jobs * self.span_seconds)


def execute_cell(
    func: Callable[..., Any], kwargs: Dict[str, Any]
) -> CellExecution:
    """Run one cell function, measuring wall time and trace-cache traffic.

    The single cell-execution primitive: the engine's serial and pool
    paths and the serve daemon's worker pool all run cells through it.
    Runs in the worker process (or in-process for the serial path);
    exceptions are flattened to strings so they always cross the pickle
    boundary back to the parent.
    """
    cache = cache_mod.active_cache()
    hits0, misses0 = (
        (cache.stats.trace_hits, cache.stats.trace_misses) if cache else (0, 0)
    )
    started = time.perf_counter()
    value, error = None, None
    try:
        value = func(**kwargs)
    except Exception as exc:
        error = f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}"
    wall = time.perf_counter() - started
    hits, misses = 0, 0
    if cache is not None:
        hits = cache.stats.trace_hits - hits0
        misses = cache.stats.trace_misses - misses0
    return CellExecution(
        value=value,
        error=error,
        wall_time=wall,
        worker=f"pid-{os.getpid()}",
        trace_hits=hits,
        trace_misses=misses,
    )


def probe_cell(cache: DiskCache, cell: Cell) -> Tuple[str, Optional[Any]]:
    """One cell's content key and its memoized value, if the disk store
    has one. The reusable probe both the engine's memoization pass and
    the serve daemon's disk tier go through."""
    key = cache.cell_key(
        cell.experiment_id, cell.cell_id, cell.kwargs, cell.func
    )
    return key, cache.get_cell(key)


def _worker_init(cache_root: Optional[str]) -> None:
    """Pool initializer: give each worker its own view of the disk cache."""
    cache_mod.activate(DiskCache(cache_root) if cache_root else None)


class ExperimentEngine:
    """Schedules experiment cells over processes, with memoization.

    ``jobs=None`` means ``os.cpu_count()``. ``cache=None`` disables
    both the on-disk trace store and cell memoization (every cell
    recomputes); pass a :class:`DiskCache` (or a directory) to enable
    them. ``memoize=False`` keeps the trace store but always recomputes
    cells — useful when cell code is being changed.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache: Union[DiskCache, str, "os.PathLike[str]", None] = None,
        memoize: bool = True,
    ) -> None:
        self.jobs = max(1, jobs if jobs is not None else (os.cpu_count() or 1))
        if cache is not None and not isinstance(cache, DiskCache):
            cache = DiskCache(Path(cache))
        self.cache: Optional[DiskCache] = cache
        self.memoize = memoize and cache is not None

    # -- public API -------------------------------------------------------

    def run(
        self,
        experiment_ids: Sequence[str],
        trace_length: int,
        seed: int = 0,
        workloads: Optional[Sequence[str]] = None,
        specs: Optional[Dict[str, ExperimentSpec]] = None,
    ) -> EngineReport:
        """Execute the named experiments' grids and assemble their tables."""
        if specs is None:
            from repro.experiments import EXPERIMENT_SPECS as specs  # lazy: avoids cycle
        grids: List[Tuple[ExperimentSpec, List[Cell]]] = []
        for experiment_id in experiment_ids:
            spec = specs[experiment_id]
            grids.append((spec, spec.cells(trace_length, seed, workloads)))

        report = EngineReport(trace_length=trace_length, seed=seed, jobs=self.jobs)
        all_cells = [cell for _, cells in grids for cell in cells]
        outcomes = self._execute_cells(all_cells, report)
        report.outcomes = [outcomes[(c.experiment_id, c.cell_id)] for c in all_cells]

        for spec, cells in grids:
            failures = [
                outcomes[(c.experiment_id, c.cell_id)]
                for c in cells
                if not outcomes[(c.experiment_id, c.cell_id)].ok
            ]
            if failures:
                report.errors[spec.experiment_id] = [
                    f"{o.cell_id}: {o.error}" for o in failures
                ]
                continue
            values = {
                c.cell_id: outcomes[(c.experiment_id, c.cell_id)].value
                for c in cells
            }
            report.results[spec.experiment_id] = spec.assemble(
                values, trace_length, seed
            )

        if self.cache is not None:
            report.cache_stats = self.cache.stats.as_dict()
        return report

    # -- internals --------------------------------------------------------

    def _execute_cells(
        self, cells: List[Cell], report: EngineReport
    ) -> Dict[Tuple[str, str], CellOutcome]:
        outcomes: Dict[Tuple[str, str], CellOutcome] = {}
        pending: List[Cell] = []
        keys: Dict[Tuple[str, str], str] = {}

        for cell in cells:
            ref = (cell.experiment_id, cell.cell_id)
            if self.memoize:
                assert self.cache is not None  # memoize implies a cache
                key, value = probe_cell(self.cache, cell)
                keys[ref] = key
                if value is not None:
                    outcomes[ref] = CellOutcome(
                        cell.experiment_id, cell.cell_id,
                        value=value, memoized=True, worker="memo",
                    )
                    continue
            pending.append(cell)

        started = time.perf_counter()
        if pending and self.jobs == 1:
            self._run_serial(pending, outcomes)
        elif pending:
            self._run_parallel(pending, outcomes, report)
        report.span_seconds = time.perf_counter() - started

        if self.memoize:
            assert self.cache is not None  # memoize implies a cache
            for ref, outcome in outcomes.items():
                if outcome.ok and not outcome.memoized:
                    self.cache.put_cell(
                        keys[ref],
                        outcome.value,
                        meta={
                            "experiment_id": outcome.experiment_id,
                            "cell_id": outcome.cell_id,
                        },
                    )
        return outcomes

    def _run_serial(
        self, cells: List[Cell], outcomes: Dict[Tuple[str, str], CellOutcome]
    ) -> None:
        with cache_mod.activated(self.cache):
            for cell in cells:
                execution = execute_cell(cell.func, cell.kwargs)
                outcomes[(cell.experiment_id, cell.cell_id)] = (
                    CellOutcome.from_execution(cell, execution, worker="serial")
                )

    def _run_parallel(
        self,
        cells: List[Cell],
        outcomes: Dict[Tuple[str, str], CellOutcome],
        report: EngineReport,
    ) -> None:
        """Pool pass with fault recovery: a dead worker (OOM-killed,
        segfaulted, machine hiccup) breaks the whole pool, so instead of
        aborting the run the unfinished cells are retried in one fresh
        pool, and — should that break too — serially in-process. Each
        recovery is recorded on ``report.recoveries`` (→ metrics.json).
        """
        unfinished = self._pool_pass(cells, outcomes)
        if not unfinished:
            return
        report.recoveries.append({
            "event": "broken_process_pool",
            "mode": "fresh_pool",
            "unfinished_cells": [cell.cell_id for cell in unfinished],
        })
        unfinished = self._pool_pass(unfinished, outcomes)
        if not unfinished:
            return
        report.recoveries.append({
            "event": "broken_process_pool",
            "mode": "serial",
            "unfinished_cells": [cell.cell_id for cell in unfinished],
        })
        self._run_serial(unfinished, outcomes)

    def _pool_pass(
        self, cells: List[Cell], outcomes: Dict[Tuple[str, str], CellOutcome]
    ) -> List[Cell]:
        """Run ``cells`` in one process pool; returns the cells left
        without an outcome when the pool broke (empty on success)."""
        cache_root = str(self.cache.root) if self.cache is not None else None
        with ProcessPoolExecutor(
            max_workers=self.jobs,
            initializer=_worker_init,
            initargs=(cache_root,),
        ) as pool:
            futures = {
                pool.submit(execute_cell, cell.func, cell.kwargs): cell
                for cell in cells
            }
            remaining = set(futures)
            while remaining:
                done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for future in done:
                    cell = futures[future]
                    try:
                        execution = future.result()
                    except BrokenProcessPool:
                        # Every future not yet harvested is lost with
                        # the pool; report them for the retry pass.
                        return [
                            c for c in cells
                            if (c.experiment_id, c.cell_id) not in outcomes
                        ]
                    outcomes[(cell.experiment_id, cell.cell_id)] = (
                        CellOutcome.from_execution(cell, execution)
                    )
        return []
