"""Content-keyed on-disk artifact cache.

Two stores under one root (default ``~/.cache/repro`` or
``$REPRO_CACHE_DIR``):

* **traces/** — generated workload traces, serialized with
  :mod:`repro.trace.io` and keyed by
  ``(workload, length, seed, GENERATOR_VERSION)``. A bump of
  :data:`repro.workloads.GENERATOR_VERSION` invalidates every cached
  trace at once.
* **cells/** — completed experiment cells (JSON payloads) keyed by the
  cell's full identity (experiment, cell id, parameters, versions), so
  re-runs and partial failures resume instead of recomputing.

Writes are atomic (temp file + rename) so concurrent workers sharing
one cache directory never observe half-written artifacts.

A module-level *active cache* makes the trace store visible to code
that cannot thread a cache handle through its API (the experiment
modules' ``workload_traces`` and the benchmark session):
:func:`activate`/:func:`deactivate`/:func:`activated` install one, and
:func:`fetch_trace` consults it, falling back to plain generation when
none is installed.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Any, Callable, Dict, Iterator, Optional, Union

from repro.trace.io import read_trace, write_trace
from repro.trace.trace import Trace
from repro.workloads import GENERATOR_VERSION, generate_trace

# Bump to invalidate memoized experiment cells whose payload schema or
# computation changed without a workload-generator change.
# "2": the cell function joined the cache key (RPP002 — a key that
# omits a Cell field goes silently stale when that field changes).
CELL_SCHEMA_VERSION = "2"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


def _qualified_name(value: Any) -> str:
    return f"{getattr(value, '__module__', '?')}.{getattr(value, '__qualname__', repr(value))}"


def canonical(value: Any) -> Any:
    """A JSON-stable stand-in for ``value`` (callables/classes by name)."""
    if callable(value):
        return _qualified_name(value)
    if isinstance(value, dict):
        return {str(k): canonical(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [canonical(v) for v in value]
    return value


@dataclass
class CacheStats:
    """Hit/miss counters, split by store."""

    trace_hits: int = 0
    trace_misses: int = 0
    cell_hits: int = 0
    cell_misses: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "trace_hits": self.trace_hits,
            "trace_misses": self.trace_misses,
            "cell_hits": self.cell_hits,
            "cell_misses": self.cell_misses,
        }


@dataclass
class DiskCache:
    """The on-disk artifact cache rooted at ``root``."""

    root: Path
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    # -- path / key plumbing ---------------------------------------------

    @property
    def trace_dir(self) -> Path:
        return self.root / "traces"

    @property
    def cell_dir(self) -> Path:
        return self.root / "cells"

    def trace_path(self, name: str, length: int, seed: int) -> Path:
        return self.trace_dir / (
            f"{name}-L{length}-S{seed}-g{GENERATOR_VERSION}.trace"
        )

    def cell_key(
        self,
        experiment_id: str,
        cell_id: str,
        params: Dict[str, Any],
        func: Optional[Callable[..., Any]] = None,
    ) -> str:
        """Content key for one experiment cell.

        Keys on every :class:`~repro.exec.cells.Cell` field — the
        experiment, the cell id, the cell function (by qualified name)
        and the canonicalized parameters — plus both cache versions, so
        a generator or schema bump invalidates every memoized cell.
        Omitting a field from the key is the silent-staleness bug the
        ``RPP002`` static rule guards against.
        """
        identity = json.dumps(
            {
                "experiment": experiment_id,
                "cell": cell_id,
                "func": None if func is None else canonical(func),
                "params": canonical(params),
                "generator_version": GENERATOR_VERSION,
                "cell_schema_version": CELL_SCHEMA_VERSION,
            },
            sort_keys=True,
        )
        return hashlib.sha256(identity.encode()).hexdigest()

    def cell_path(self, key: str) -> Path:
        return self.cell_dir / f"{key}.json"

    # -- trace store ------------------------------------------------------

    def get_trace(self, name: str, length: int, seed: int) -> Optional[Trace]:
        path = self.trace_path(name, length, seed)
        if not path.exists():
            self.stats.trace_misses += 1
            return None
        self.stats.trace_hits += 1
        return read_trace(path)

    def put_trace(self, trace: Trace, name: str, length: int, seed: int) -> Path:
        path = self.trace_path(name, length, seed)
        self._atomic_write(path, lambda handle: write_trace(trace, handle))
        return path

    def fetch_trace(self, name: str, length: int, seed: int) -> Trace:
        """Cached trace for ``(name, length, seed)``, generating on miss."""
        trace = self.get_trace(name, length, seed)
        if trace is not None:
            return trace
        trace = generate_trace(name, length=length, seed=seed)
        self.put_trace(trace, name, length, seed)
        return trace

    # -- cell store -------------------------------------------------------

    def get_cell(self, key: str) -> Optional[Any]:
        path = self.cell_path(key)
        if not path.exists():
            self.stats.cell_misses += 1
            return None
        self.stats.cell_hits += 1
        with open(path) as handle:
            return json.load(handle)["value"]

    def put_cell(self, key: str, value: Any) -> Path:
        path = self.cell_path(key)
        payload = json.dumps({"value": value}, sort_keys=True)
        self._atomic_write(path, lambda handle: handle.write(payload))
        return path

    # -- internals --------------------------------------------------------

    def _atomic_write(self, path: Path, write: Callable[[IO[str]], object]) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                write(handle)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise


# -- the active cache ------------------------------------------------------

_ACTIVE: Optional[DiskCache] = None


def activate(cache: Optional[Union[DiskCache, str, Path]]) -> Optional[DiskCache]:
    """Install ``cache`` (a :class:`DiskCache`, or a directory to root
    one at) as the process-wide active cache; returns it."""
    # The active cache is deliberately process-local: each pool worker
    # installs its own handle via the engine's initializer.
    global _ACTIVE  # repro-lint: disable=RPD005
    if cache is not None and not isinstance(cache, DiskCache):
        cache = DiskCache(Path(cache))
    _ACTIVE = cache
    return cache


def deactivate() -> None:
    global _ACTIVE  # repro-lint: disable=RPD005
    _ACTIVE = None


def active_cache() -> Optional[DiskCache]:
    return _ACTIVE


@contextmanager
def activated(cache: Optional[Union[DiskCache, str, Path]]) -> Iterator[Optional[DiskCache]]:
    """Scoped :func:`activate`; restores the previous active cache."""
    previous = _ACTIVE
    installed = activate(cache)
    try:
        yield installed
    finally:
        activate(previous)


def fetch_trace(name: str, length: int, seed: int) -> Trace:
    """Trace via the active disk cache, or plain generation without one."""
    cache = _ACTIVE
    if cache is None:
        return generate_trace(name, length=length, seed=seed)
    return cache.fetch_trace(name, length, seed)
