"""Content-keyed on-disk artifact cache.

Two stores under one root (default ``~/.cache/repro`` or
``$REPRO_CACHE_DIR``):

* **traces/** — generated workload traces, serialized with
  :mod:`repro.trace.io` and keyed by
  ``(workload, length, seed, GENERATOR_VERSION)``. A bump of
  :data:`repro.workloads.GENERATOR_VERSION` invalidates every cached
  trace at once.
* **cells/** — completed experiment cells (JSON payloads) keyed by the
  cell's full identity (experiment, cell id, parameters, versions), so
  re-runs and partial failures resume instead of recomputing.
* **goldens/** — authoritative recorded cell outcomes for the
  ``repro-lint diff`` differential verifier: the cell's value plus
  auxiliary digests (funcsim architectural state, DID histograms),
  keyed like cells. Goldens are *evidence*, not memoization — replays
  recompute the cell on purpose and compare against them.

Writes are atomic (temp file + rename) so concurrent workers sharing
one cache directory never observe half-written artifacts.

The store is administrable: :meth:`DiskCache.accounting` reports entry
counts and byte totals (with a per-experiment breakdown from the cell
payloads' metadata) and :meth:`DiskCache.prune` evicts
least-recently-used entries down to a byte budget. Cell reads touch the
file's mtime, so recency reflects use, not just creation.

The store is also self-defending: cell payloads carry a sha256 content
checksum written alongside the value, and every read re-verifies it.
A truncated, bit-flipped or otherwise unparseable entry (cell or trace)
is **quarantined** — renamed to ``<name>.corrupt`` — counted in
:class:`CacheStats` and :meth:`DiskCache.accounting`, and treated as a
plain miss, so one corrupt file degrades to a recompute instead of
taking down a whole run or a serve worker.

A module-level *active cache* makes the trace store visible to code
that cannot thread a cache handle through its API (the experiment
modules' ``workload_traces`` and the benchmark session):
:func:`activate`/:func:`deactivate`/:func:`activated` install one, and
:func:`fetch_trace` consults it, falling back to plain generation when
none is installed.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Any, Callable, Dict, Iterator, List, Optional, Tuple, Union

from repro.errors import TraceError
from repro.trace.io import read_trace, write_trace
from repro.trace.trace import Trace
from repro.workloads import GENERATOR_VERSION, generate_trace

# Bump to invalidate memoized experiment cells whose payload schema or
# computation changed without a workload-generator change.
# "2": the cell function joined the cache key (RPP002 — a key that
# omits a Cell field goes silently stale when that field changes).
CELL_SCHEMA_VERSION = "2"

# Quarantined (corrupt) store files are renamed to carry this suffix;
# they are invisible to reads and pruned before any healthy entry.
QUARANTINE_SUFFIX = ".corrupt"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


def _qualified_name(value: Any) -> str:
    return f"{getattr(value, '__module__', '?')}.{getattr(value, '__qualname__', repr(value))}"


def canonical(value: Any) -> Any:
    """A JSON-stable stand-in for ``value`` (callables/classes by name)."""
    if callable(value):
        return _qualified_name(value)
    if isinstance(value, dict):
        return {str(k): canonical(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [canonical(v) for v in value]
    return value


def compute_cell_key(
    experiment_id: str,
    cell_id: str,
    params: Dict[str, Any],
    func: Optional[Callable[..., Any]] = None,
) -> str:
    """Content key for one experiment cell, independent of any store.

    Keys on every :class:`~repro.exec.cells.Cell` field — the
    experiment, the cell id, the cell function (by qualified name) and
    the canonicalized parameters — plus both cache versions, so a
    generator or schema bump invalidates every memoized cell. Usable
    without a :class:`DiskCache` (the serve daemon keys its in-memory
    tier and in-flight coalescing on it even when the disk store is
    disabled).
    """
    identity = json.dumps(
        {
            "experiment": experiment_id,
            "cell": cell_id,
            "func": None if func is None else canonical(func),
            "params": canonical(params),
            "generator_version": GENERATOR_VERSION,
            "cell_schema_version": CELL_SCHEMA_VERSION,
        },
        sort_keys=True,
    )
    return hashlib.sha256(identity.encode()).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss counters, split by store.

    ``*_corrupt`` counts entries quarantined on read: each one was
    renamed to ``*.corrupt`` and answered as a miss.
    """

    trace_hits: int = 0
    trace_misses: int = 0
    cell_hits: int = 0
    cell_misses: int = 0
    trace_corrupt: int = 0
    cell_corrupt: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "trace_hits": self.trace_hits,
            "trace_misses": self.trace_misses,
            "cell_hits": self.cell_hits,
            "cell_misses": self.cell_misses,
            "trace_corrupt": self.trace_corrupt,
            "cell_corrupt": self.cell_corrupt,
        }


def value_digest(value: Any) -> str:
    """Canonical sha256 of one JSON-serializable cell value.

    Written next to the value by :meth:`DiskCache.put_cell` and
    re-verified on every read, so silent on-disk corruption (partial
    writes, bit flips) turns into a quarantine + miss instead of a
    poisoned figure.
    """
    blob = json.dumps(value, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass
class DiskCache:
    """The on-disk artifact cache rooted at ``root``."""

    root: Path
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    # -- path / key plumbing ---------------------------------------------

    @property
    def trace_dir(self) -> Path:
        return self.root / "traces"

    @property
    def cell_dir(self) -> Path:
        return self.root / "cells"

    @property
    def golden_dir(self) -> Path:
        return self.root / "goldens"

    def trace_path(self, name: str, length: int, seed: int) -> Path:
        return self.trace_dir / (
            f"{name}-L{length}-S{seed}-g{GENERATOR_VERSION}.trace"
        )

    def cell_key(
        self,
        experiment_id: str,
        cell_id: str,
        params: Dict[str, Any],
        func: Optional[Callable[..., Any]] = None,
    ) -> str:
        """Content key for one experiment cell (see
        :func:`compute_cell_key`). Omitting a field from the key is the
        silent-staleness bug the ``RPP002`` static rule guards against.
        """
        return compute_cell_key(experiment_id, cell_id, params, func)

    def cell_path(self, key: str) -> Path:
        return self.cell_dir / f"{key}.json"

    # -- trace store ------------------------------------------------------

    def get_trace(self, name: str, length: int, seed: int) -> Optional[Trace]:
        path = self.trace_path(name, length, seed)
        if not path.exists():
            self.stats.trace_misses += 1
            return None
        try:
            trace = read_trace(path)
        except (OSError, ValueError, TraceError):
            # Truncated or garbled trace file: quarantine and miss, so
            # the caller regenerates instead of crashing mid-sweep.
            self._quarantine(path)
            self.stats.trace_corrupt += 1
            self.stats.trace_misses += 1
            return None
        self.stats.trace_hits += 1
        return trace

    def put_trace(self, trace: Trace, name: str, length: int, seed: int) -> Path:
        path = self.trace_path(name, length, seed)
        self._atomic_write(path, lambda handle: write_trace(trace, handle))
        return path

    def fetch_trace(self, name: str, length: int, seed: int) -> Trace:
        """Cached trace for ``(name, length, seed)``, generating on miss."""
        trace = self.get_trace(name, length, seed)
        if trace is not None:
            return trace
        trace = generate_trace(name, length=length, seed=seed)
        self.put_trace(trace, name, length, seed)
        return trace

    # -- cell store -------------------------------------------------------

    def get_cell(self, key: str) -> Optional[Any]:
        path = self.cell_path(key)
        if not path.exists():
            self.stats.cell_misses += 1
            return None
        try:
            with open(path) as handle:
                record = json.load(handle)
            value = record["value"]
            checksum = record.get("sha256")
        except (OSError, ValueError, KeyError, TypeError):
            return self._quarantine_cell(path)
        # Entries written before checksums existed carry none and are
        # trusted as before; a present-but-wrong digest is corruption.
        if checksum is not None and checksum != value_digest(value):
            return self._quarantine_cell(path)
        self.stats.cell_hits += 1
        try:
            # Refresh recency so LRU pruning evicts what is actually
            # cold, not merely what was written first.
            os.utime(path, None)
        except OSError:  # pragma: no cover - unwritable store
            pass
        return value

    def _quarantine_cell(self, path: Path) -> Optional[Any]:
        """Sideline one corrupt cell entry and answer it as a miss."""
        self._quarantine(path)
        self.stats.cell_corrupt += 1
        self.stats.cell_misses += 1
        return None

    def put_cell(
        self, key: str, value: Any, meta: Optional[Dict[str, Any]] = None
    ) -> Path:
        """Store one cell value; ``meta`` (experiment id, cell id) rides
        along for the accounting breakdown and never feeds the key."""
        path = self.cell_path(key)
        record: Dict[str, Any] = {"value": value, "sha256": value_digest(value)}
        if meta:
            record["meta"] = canonical(meta)
        payload = json.dumps(record, sort_keys=True)
        self._atomic_write(path, lambda handle: handle.write(payload))
        return path

    # -- golden store -----------------------------------------------------

    def golden_path(self, key: str) -> Path:
        return self.golden_dir / f"{key}.json"

    def put_golden(self, key: str, record: Dict[str, Any]) -> Path:
        """Store one golden record; its ``value`` gets a sha256 sibling
        so replay comparisons can trust what they read."""
        path = self.golden_path(key)
        stored = dict(record)
        stored["sha256"] = value_digest(stored.get("value"))
        payload = json.dumps(stored, sort_keys=True)
        self._atomic_write(path, lambda handle: handle.write(payload))
        return path

    def get_golden(self, key: str) -> Optional[Dict[str, Any]]:
        """One golden record by key, checksum-verified; a corrupt or
        tampered record is quarantined and answered as a miss."""
        path = self.golden_path(key)
        if not path.exists():
            return None
        try:
            with open(path) as handle:
                record = json.load(handle)
            checksum = record["sha256"]
        except (OSError, ValueError, KeyError, TypeError):
            self._quarantine(path)
            return None
        if checksum != value_digest(record.get("value")):
            self._quarantine(path)
            return None
        if not isinstance(record, dict):  # pragma: no cover - defensive
            return None
        return record

    def iter_goldens(self) -> List[Dict[str, Any]]:
        """Every healthy golden record, sorted by key (deterministic)."""
        if not self.golden_dir.is_dir():
            return []
        records: List[Dict[str, Any]] = []
        for path in sorted(self.golden_dir.iterdir()):
            if not path.name.endswith(".json"):
                continue
            record = self.get_golden(path.name[: -len(".json")])
            if record is not None:
                records.append(record)
        return records

    # -- accounting & eviction --------------------------------------------

    def _entries(self) -> List[Tuple[Path, float, int]]:
        """Every healthy store file as ``(path, mtime, size)``, oldest
        first; quarantined ``*.corrupt`` files are listed separately by
        :meth:`_quarantined`."""
        entries: List[Tuple[Path, float, int]] = []
        for store in (self.trace_dir, self.cell_dir, self.golden_dir):
            if not store.is_dir():
                continue
            for path in store.iterdir():
                if path.name.startswith(".") or path.is_dir():
                    continue
                if path.name.endswith(QUARANTINE_SUFFIX):
                    continue
                try:
                    stat = path.stat()
                except OSError:  # pragma: no cover - raced deletion
                    continue
                entries.append((path, stat.st_mtime, stat.st_size))
        entries.sort(key=lambda entry: (entry[1], str(entry[0])))
        return entries

    def _quarantined(self) -> List[Tuple[Path, int]]:
        """Every quarantined ``*.corrupt`` file as ``(path, size)``."""
        quarantined: List[Tuple[Path, int]] = []
        for store in (self.trace_dir, self.cell_dir, self.golden_dir):
            if not store.is_dir():
                continue
            for path in store.iterdir():
                if not path.name.endswith(QUARANTINE_SUFFIX):
                    continue
                try:
                    quarantined.append((path, path.stat().st_size))
                except OSError:  # pragma: no cover - raced deletion
                    continue
        quarantined.sort(key=lambda entry: str(entry[0]))
        return quarantined

    def accounting(self) -> Dict[str, Any]:
        """Entry counts and byte totals, per store and per experiment.

        The per-experiment breakdown reads each cell payload's ``meta``
        record; cells written before metadata existed are grouped under
        ``"unknown"``. This is the single accounting source shared by
        ``repro-experiments cache stats`` and the serve daemon's
        ``stats`` endpoint.
        """
        traces: Dict[str, int] = {"entries": 0, "bytes": 0}
        cells: Dict[str, int] = {"entries": 0, "bytes": 0}
        goldens: Dict[str, int] = {"entries": 0, "bytes": 0}
        per_experiment: Dict[str, Dict[str, int]] = {}
        for path, _mtime, size in self._entries():
            if path.parent == self.trace_dir:
                traces["entries"] += 1
                traces["bytes"] += size
                continue
            if path.parent == self.golden_dir:
                goldens["entries"] += 1
                goldens["bytes"] += size
                continue
            cells["entries"] += 1
            cells["bytes"] += size
            experiment = "unknown"
            try:
                with open(path) as handle:
                    meta = json.load(handle).get("meta") or {}
                experiment = str(meta.get("experiment_id", "unknown"))
            except (OSError, ValueError):  # pragma: no cover - corrupt entry
                pass
            bucket = per_experiment.setdefault(
                experiment, {"entries": 0, "bytes": 0}
            )
            bucket["entries"] += 1
            bucket["bytes"] += size
        cells_payload: Dict[str, Any] = dict(cells)
        cells_payload["per_experiment"] = per_experiment
        quarantined = self._quarantined()
        corrupt = {
            "entries": len(quarantined),
            "bytes": sum(size for _path, size in quarantined),
        }
        return {
            "root": str(self.root),
            "traces": traces,
            "cells": cells_payload,
            "goldens": goldens,
            "corrupt": corrupt,
            "total_bytes": traces["bytes"] + cells["bytes"] + goldens["bytes"],
        }

    def prune(self, max_bytes: int) -> Dict[str, int]:
        """Evict least-recently-used entries until the store fits
        ``max_bytes``; returns eviction counts and the surviving size.

        Quarantined ``*.corrupt`` files are deleted unconditionally
        first — they hold no servable data and never count against the
        budget."""
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        for path, _size in self._quarantined():
            try:
                path.unlink()
            except OSError:  # pragma: no cover - raced deletion
                pass
        entries = self._entries()
        total = sum(size for _path, _mtime, size in entries)
        evicted = 0
        evicted_bytes = 0
        for path, _mtime, size in entries:
            if total <= max_bytes:
                break
            try:
                path.unlink()
            except OSError:  # pragma: no cover - raced deletion
                continue
            total -= size
            evicted += 1
            evicted_bytes += size
        return {
            "evicted": evicted,
            "evicted_bytes": evicted_bytes,
            "kept_bytes": total,
        }

    # -- internals --------------------------------------------------------

    def _quarantine(self, path: Path) -> None:
        """Rename a corrupt store file to ``<name>.corrupt`` so it stops
        being served but stays inspectable until the next prune."""
        try:
            path.rename(path.with_name(path.name + QUARANTINE_SUFFIX))
        except OSError:  # pragma: no cover - raced deletion / RO store
            pass

    def _atomic_write(self, path: Path, write: Callable[[IO[str]], object]) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                write(handle)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise


# -- the active cache ------------------------------------------------------

_ACTIVE: Optional[DiskCache] = None


def activate(cache: Optional[Union[DiskCache, str, Path]]) -> Optional[DiskCache]:
    """Install ``cache`` (a :class:`DiskCache`, or a directory to root
    one at) as the process-wide active cache; returns it."""
    # The active cache is deliberately process-local: each pool worker
    # installs its own handle via the engine's initializer.
    global _ACTIVE  # repro-lint: disable=RPD005
    if cache is not None and not isinstance(cache, DiskCache):
        cache = DiskCache(Path(cache))
    _ACTIVE = cache
    return cache


def deactivate() -> None:
    global _ACTIVE  # repro-lint: disable=RPD005
    _ACTIVE = None


def active_cache() -> Optional[DiskCache]:
    return _ACTIVE


@contextmanager
def activated(cache: Optional[Union[DiskCache, str, Path]]) -> Iterator[Optional[DiskCache]]:
    """Scoped :func:`activate`; restores the previous active cache."""
    previous = _ACTIVE
    installed = activate(cache)
    try:
        yield installed
    finally:
        activate(previous)


def fetch_trace(name: str, length: int, seed: int) -> Trace:
    """Trace via the active disk cache, or plain generation without one."""
    cache = _ACTIVE
    if cache is None:
        return generate_trace(name, length=length, seed=seed)
    return cache.fetch_trace(name, length, seed)
