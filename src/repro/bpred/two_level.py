"""2-level adaptive BTB in PAp configuration (Yeh & Patt [27]).

Section 5's realistic predictor: the first level is a 2K-entry, 2-way
set-associative BTB whose entries hold a 4-bit per-branch history
register plus the branch target; the second level is a per-address
pattern table of 2-bit saturating counters indexed by the history.
Multiple branches may be predicted per cycle, as the paper assumes
(after [18]) — the predictor itself is stateless across slots within a
cycle, so the fetch engines simply query it repeatedly.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Tuple

from repro.bpred.base import BranchPredictor
from repro.errors import ConfigError
from repro.isa.opcodes import OpClass, Opcode
from repro.trace.record import DynInstr


class _BTBEntry:
    __slots__ = ("history", "target")

    def __init__(self, history: int = 0, target: Optional[int] = None):
        self.history = history
        self.target = target


class TwoLevelBTB(BranchPredictor):
    """First-level BTB + per-address (PAp) second-level pattern tables."""

    def __init__(
        self,
        n_entries: int = 2048,
        assoc: int = 2,
        history_bits: int = 4,
        counter_bits: int = 2,
        ras_entries: int = 8,
    ):
        super().__init__()
        if n_entries < assoc or n_entries % assoc:
            raise ConfigError("n_entries must be a multiple of assoc")
        n_sets = n_entries // assoc
        if n_sets & (n_sets - 1):
            raise ConfigError("number of BTB sets must be a power of two")
        if history_bits < 1 or counter_bits < 1:
            raise ConfigError("history/counter bits must be positive")
        self.n_sets = n_sets
        self.assoc = assoc
        self.history_bits = history_bits
        self.history_mask = (1 << history_bits) - 1
        self.counter_max = (1 << counter_bits) - 1
        self.counter_threshold = 1 << (counter_bits - 1)
        # set index -> OrderedDict[pc, _BTBEntry] in LRU order.
        self._sets: Dict[int, "OrderedDict[int, _BTBEntry]"] = {}
        # (pc, history) -> saturating counter (PAp second level).
        self._patterns: Dict[Tuple[int, int], int] = {}
        self.misses = 0
        # Return-address stack: calls push their link value, returns pop.
        self.ras_entries = ras_entries
        self._ras: list = []

    # -- return-address stack ------------------------------------------

    def _push_return(self, address: Optional[int]) -> None:
        if address is None:
            return
        if len(self._ras) >= self.ras_entries:
            del self._ras[0]
        self._ras.append(address)

    @staticmethod
    def _is_return(record: DynInstr) -> bool:
        # ABI convention: `jr ra` is a function return.
        return record.op is Opcode.JR and record.srcs == (1,)

    def predict_and_update(self, record: DynInstr) -> bool:
        # Direct calls are always fetched correctly (target in the
        # instruction bits) but must still push the return address.
        if record.op is Opcode.JAL:
            self._push_return(record.value)
            return True
        return super().predict_and_update(record)

    # -- lookup ---------------------------------------------------------

    def _find(self, pc: int) -> Optional[_BTBEntry]:
        index = (pc >> 2) & (self.n_sets - 1)
        residents = self._sets.get(index)
        if residents is None or pc not in residents:
            return None
        residents.move_to_end(pc)
        return residents[pc]

    def _predict(self, record: DynInstr) -> bool:
        entry = self._find(record.pc)
        if record.op_class is OpClass.BRANCH:
            if entry is None:
                # BTB miss: fall through (predict not-taken).
                self.misses += 1
                return not record.taken
            counter = self._patterns.get(
                (record.pc, entry.history), self.counter_threshold
            )
            predict_taken = counter >= self.counter_threshold
            if predict_taken != record.taken:
                return False
            if record.taken:
                # Direction right; the stored target must also be right.
                return entry.target == record.next_pc
            return True
        # Returns predict through the return-address stack.
        if self._is_return(record) and self._ras:
            return self._ras[-1] == record.next_pc
        # Other indirect jumps: correct only if the stored target matches.
        if entry is None or entry.target is None:
            self.misses += 1
            return False
        return entry.target == record.next_pc

    # -- training -----------------------------------------------------------

    def _update(self, record: DynInstr) -> None:
        if self._is_return(record):
            if self._ras:
                self._ras.pop()
            return
        if record.op is Opcode.JALR:
            self._push_return(record.value)
        index = (record.pc >> 2) & (self.n_sets - 1)
        residents = self._sets.setdefault(index, OrderedDict())
        entry = residents.get(record.pc)
        if entry is None:
            if len(residents) >= self.assoc:
                victim_pc, _entry = residents.popitem(last=False)
                # PAp second level: the victim's pattern table goes too.
                for history in range(self.history_mask + 1):
                    self._patterns.pop((victim_pc, history), None)
            entry = _BTBEntry()
            residents[record.pc] = entry
        else:
            residents.move_to_end(record.pc)

        if record.op_class is OpClass.BRANCH:
            key = (record.pc, entry.history)
            counter = self._patterns.get(key, self.counter_threshold)
            if record.taken:
                counter = min(counter + 1, self.counter_max)
            else:
                counter = max(counter - 1, 0)
            self._patterns[key] = counter
            entry.history = (
                (entry.history << 1) | int(record.taken)
            ) & self.history_mask
            if record.taken:
                entry.target = record.next_pc
        else:
            entry.target = record.next_pc

    def _reset_state(self) -> None:
        self._sets.clear()
        self._patterns.clear()
        self.misses = 0
