"""The ideal branch predictor of the first Section 5 experiment set."""

from __future__ import annotations

from repro.bpred.base import BranchPredictor
from repro.trace.record import DynInstr


class PerfectBranchPredictor(BranchPredictor):
    """Always right — isolates value prediction from control speculation."""

    def _predict(self, record: DynInstr) -> bool:
        return True

    def _update(self, record: DynInstr) -> None:
        pass

    def _reset_state(self) -> None:
        pass
