"""Branch prediction: perfect predictor and the 2-level PAp BTB of
Section 5 (2K-entry, 2-way set-associative first level, 4-bit local
history registers, per-address pattern tables), with multiple-branch-
per-cycle prediction as the paper assumes for its fetch engines.
"""

from repro.bpred.base import BranchPredictor, BranchPredictorStats
from repro.bpred.perfect import PerfectBranchPredictor
from repro.bpred.two_level import TwoLevelBTB

__all__ = [
    "BranchPredictor",
    "BranchPredictorStats",
    "PerfectBranchPredictor",
    "TwoLevelBTB",
]
