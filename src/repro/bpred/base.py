"""Branch predictor interface for trace-driven timing simulation.

The timing cores walk the correct-path trace, so the only question a
predictor must answer per control instruction is *was it predicted
correctly* — a wrong answer costs the machine the misprediction penalty.
Direct unconditional jumps (J/JAL) are always handled correctly: their
targets are available to the fetch engine from the instruction bits, as
in the multiple-block fetch units the paper builds on; the predictor is
consulted for conditional branches and register-indirect jumps.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.isa.opcodes import OpClass, Opcode
from repro.trace.record import DynInstr


@dataclass
class BranchPredictorStats:
    """Outcome counts for predicted control instructions."""

    conditional: int = 0
    conditional_correct: int = 0
    indirect: int = 0
    indirect_correct: int = 0

    @property
    def lookups(self) -> int:
        return self.conditional + self.indirect

    @property
    def correct(self) -> int:
        return self.conditional_correct + self.indirect_correct

    @property
    def accuracy(self) -> float:
        return self.correct / self.lookups if self.lookups else 1.0

    @property
    def conditional_accuracy(self) -> float:
        if not self.conditional:
            return 1.0
        return self.conditional_correct / self.conditional


class BranchPredictor(abc.ABC):
    """Predicts control-flow outcomes along the correct path."""

    def __init__(self):
        self.stats = BranchPredictorStats()

    def needs_prediction(self, record: DynInstr) -> bool:
        """Controls whether this dynamic instruction consults the BTB."""
        if record.op_class is OpClass.BRANCH:
            return True
        return record.op in (Opcode.JR, Opcode.JALR)

    def predict_and_update(self, record: DynInstr) -> bool:
        """Predict this control instruction, train, return correctness."""
        if not self.needs_prediction(record):
            return True
        correct = self._predict(record)
        if record.op_class is OpClass.BRANCH:
            self.stats.conditional += 1
            if correct:
                self.stats.conditional_correct += 1
        else:
            self.stats.indirect += 1
            if correct:
                self.stats.indirect_correct += 1
        self._update(record)
        return correct

    @abc.abstractmethod
    def _predict(self, record: DynInstr) -> bool:
        """Would the hardware have predicted ``record`` correctly?"""

    @abc.abstractmethod
    def _update(self, record: DynInstr) -> None:
        """Train on the actual outcome."""

    def reset(self) -> None:
        self.stats = BranchPredictorStats()
        self._reset_state()

    @abc.abstractmethod
    def _reset_state(self) -> None:
        """Clear table state."""
