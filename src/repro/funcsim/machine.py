"""Architectural interpreter for the repro ISA."""

from __future__ import annotations

from typing import List, Optional

from repro.errors import ExecutionError
from repro.funcsim.memory import Memory
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.program import STACK_BASE, WORD_SIZE, Program
from repro.isa.registers import NUM_REGS, register_number
from repro.trace.record import DynInstr
from repro.trace.trace import Trace

_MASK64 = (1 << 64) - 1
_SIGN64 = 1 << 63


def _signed(value: int) -> int:
    """Interpret a masked 64-bit value as two's-complement."""
    return value - (1 << 64) if value & _SIGN64 else value


class Machine:
    """Architectural state plus a fetch-decode-execute loop.

    Division by zero yields 0 (REM yields the dividend), documented ISA
    behaviour chosen so kernels need no trap plumbing. The stack pointer
    is initialized to :data:`STACK_BASE`.
    """

    def __init__(self, program: Program):
        self.program = program
        self.regs: List[int] = [0] * NUM_REGS
        self.regs[register_number("sp")] = STACK_BASE
        self.memory = Memory(program.data)
        self.pc = program.entry
        self.halted = False
        self.instret = 0  # dynamic instructions retired

    # -- single step -------------------------------------------------------

    def step(self) -> Optional[DynInstr]:
        """Execute one instruction; return its trace record (None if halted)."""
        if self.halted:
            return None
        pc = self.pc
        try:
            instr = self.program.fetch(pc)
        except Exception as exc:
            raise ExecutionError("fetch outside code segment", pc=pc) from exc

        record = self._execute(instr, pc)
        self.instret += 1
        self.pc = record.next_pc
        return record

    def _execute(self, instr: Instruction, pc: int) -> DynInstr:
        regs = self.regs
        op = instr.op
        seq = self.instret
        next_pc = pc + WORD_SIZE
        dest: Optional[int] = None
        value: Optional[int] = None
        taken = False
        mem_addr: Optional[int] = None

        if op is Opcode.ADD:
            value = (regs[instr.rs1] + regs[instr.rs2]) & _MASK64
        elif op is Opcode.SUB:
            value = (regs[instr.rs1] - regs[instr.rs2]) & _MASK64
        elif op is Opcode.MUL:
            value = (regs[instr.rs1] * regs[instr.rs2]) & _MASK64
        elif op is Opcode.DIV:
            divisor = _signed(regs[instr.rs2])
            if divisor == 0:
                value = 0
            else:
                quotient = int(_signed(regs[instr.rs1]) / divisor)
                value = quotient & _MASK64
        elif op is Opcode.REM:
            divisor = _signed(regs[instr.rs2])
            if divisor == 0:
                value = regs[instr.rs1]
            else:
                dividend = _signed(regs[instr.rs1])
                value = (dividend - int(dividend / divisor) * divisor) & _MASK64
        elif op is Opcode.AND:
            value = regs[instr.rs1] & regs[instr.rs2]
        elif op is Opcode.OR:
            value = regs[instr.rs1] | regs[instr.rs2]
        elif op is Opcode.XOR:
            value = regs[instr.rs1] ^ regs[instr.rs2]
        elif op is Opcode.SLL:
            value = (regs[instr.rs1] << (regs[instr.rs2] & 63)) & _MASK64
        elif op is Opcode.SRL:
            value = regs[instr.rs1] >> (regs[instr.rs2] & 63)
        elif op is Opcode.SRA:
            value = (_signed(regs[instr.rs1]) >> (regs[instr.rs2] & 63)) & _MASK64
        elif op is Opcode.SLT:
            value = int(_signed(regs[instr.rs1]) < _signed(regs[instr.rs2]))
        elif op is Opcode.SLTU:
            value = int(regs[instr.rs1] < regs[instr.rs2])
        elif op is Opcode.SEQ:
            value = int(regs[instr.rs1] == regs[instr.rs2])
        elif op is Opcode.ADDI:
            value = (regs[instr.rs1] + instr.imm) & _MASK64
        elif op is Opcode.ANDI:
            value = regs[instr.rs1] & (instr.imm & _MASK64)
        elif op is Opcode.ORI:
            value = regs[instr.rs1] | (instr.imm & _MASK64)
        elif op is Opcode.XORI:
            value = regs[instr.rs1] ^ (instr.imm & _MASK64)
        elif op is Opcode.SLLI:
            value = (regs[instr.rs1] << (instr.imm & 63)) & _MASK64
        elif op is Opcode.SRLI:
            value = regs[instr.rs1] >> (instr.imm & 63)
        elif op is Opcode.SRAI:
            value = (_signed(regs[instr.rs1]) >> (instr.imm & 63)) & _MASK64
        elif op is Opcode.SLTI:
            value = int(_signed(regs[instr.rs1]) < instr.imm)
        elif op is Opcode.MULI:
            value = (regs[instr.rs1] * instr.imm) & _MASK64
        elif op is Opcode.LI:
            value = instr.imm & _MASK64
        elif op is Opcode.MOV:
            value = regs[instr.rs1]
        elif op is Opcode.LD:
            mem_addr = (regs[instr.rs1] + instr.imm) & _MASK64
            value = self.memory.load(mem_addr)
        elif op is Opcode.ST:
            mem_addr = (regs[instr.rs1] + instr.imm) & _MASK64
            self.memory.store(mem_addr, regs[instr.rs2])
        elif op is Opcode.BEQ:
            taken = regs[instr.rs1] == regs[instr.rs2]
        elif op is Opcode.BNE:
            taken = regs[instr.rs1] != regs[instr.rs2]
        elif op is Opcode.BLT:
            taken = _signed(regs[instr.rs1]) < _signed(regs[instr.rs2])
        elif op is Opcode.BGE:
            taken = _signed(regs[instr.rs1]) >= _signed(regs[instr.rs2])
        elif op is Opcode.BLTU:
            taken = regs[instr.rs1] < regs[instr.rs2]
        elif op is Opcode.BGEU:
            taken = regs[instr.rs1] >= regs[instr.rs2]
        elif op is Opcode.J:
            taken = True
            next_pc = instr.imm
        elif op is Opcode.JAL:
            taken = True
            value = pc + WORD_SIZE
            next_pc = instr.imm
        elif op is Opcode.JR:
            taken = True
            next_pc = regs[instr.rs1]
        elif op is Opcode.JALR:
            taken = True
            value = pc + WORD_SIZE
            next_pc = regs[instr.rs1]
        elif op is Opcode.NOP:
            pass
        elif op is Opcode.HALT:
            self.halted = True
        else:  # pragma: no cover - exhaustive dispatch
            raise ExecutionError(f"unimplemented opcode {op}", pc=pc)

        if taken and instr.is_branch:
            next_pc = instr.imm

        if instr.writes_register and value is not None:
            regs[instr.rd] = value
            dest = instr.rd
        else:
            value = None

        return DynInstr(
            seq=seq,
            pc=pc,
            op=op,
            dest=dest,
            srcs=instr.source_registers(),
            value=value,
            taken=taken,
            next_pc=next_pc,
            mem_addr=mem_addr,
        )

    # -- whole-program runs ---------------------------------------------

    def run(self, max_instructions: Optional[int] = None) -> Trace:
        """Run until HALT or ``max_instructions``; return the trace."""
        records = []
        while not self.halted:
            if max_instructions is not None and self.instret >= max_instructions:
                break
            record = self.step()
            if record is None:
                break
            records.append(record)
        return Trace(records, name=self.program.name)


def run_program(program: Program, max_instructions: Optional[int] = None) -> Trace:
    """Convenience wrapper: execute ``program`` and return its trace."""
    return Machine(program).run(max_instructions=max_instructions)
