"""Sparse word-addressed data memory."""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from repro.errors import ExecutionError
from repro.isa.program import WORD_SIZE

_MASK64 = (1 << 64) - 1


class Memory:
    """Sparse memory of 64-bit words at 4-byte-aligned addresses.

    Uninitialized words read as zero, which keeps kernels free of
    boilerplate clearing loops (and matches zero-filled BSS semantics).
    """

    def __init__(self, image: Dict[int, int] | None = None):
        self._words: Dict[int, int] = {}
        if image:
            for address, value in image.items():
                self.store(address, value)

    def load(self, address: int) -> int:
        """Read the word at ``address`` (0 when never written)."""
        self._check(address)
        return self._words.get(address, 0)

    def store(self, address: int, value: int) -> None:
        """Write ``value`` (masked to 64 bits) at ``address``."""
        self._check(address)
        self._words[address] = value & _MASK64

    def _check(self, address: int) -> None:
        if address < 0:
            raise ExecutionError(f"negative memory address {address:#x}")
        if address % WORD_SIZE:
            raise ExecutionError(f"misaligned memory access at {address:#x}")

    def __len__(self) -> int:
        return len(self._words)

    def items(self) -> Iterable[Tuple[int, int]]:
        return self._words.items()

    def snapshot(self) -> Dict[int, int]:
        """A copy of the current memory image."""
        return dict(self._words)
