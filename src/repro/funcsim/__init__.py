"""Functional (architectural) simulator.

Executes :class:`~repro.isa.Program` objects instruction by instruction
and captures the dynamic stream as a :class:`~repro.trace.Trace`. This is
the stand-in for the paper's Shade tracing tool on SPARC.
"""

from repro.funcsim.memory import Memory
from repro.funcsim.machine import Machine, run_program

__all__ = ["Memory", "Machine", "run_program"]
