"""Result formatting shared by experiments, examples and benches."""

from repro.analysis.report import (
    ExperimentResult,
    format_percent,
    render_table,
)
from repro.analysis.usefulness import UsefulnessStats, useless_prediction_stats

__all__ = [
    "ExperimentResult",
    "format_percent",
    "render_table",
    "UsefulnessStats",
    "useless_prediction_stats",
]
