"""Plain-text tables for experiment output.

Every experiment returns an :class:`ExperimentResult`; the benches print
``result.format()`` so each bench regenerates its paper artifact as the
same rows/series the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence


def format_percent(value: float, digits: int = 1) -> str:
    """0.335 -> '33.5%'."""
    return f"{value * 100:.{digits}f}%"


def render_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Render an aligned ASCII table (first column left, rest right)."""
    columns = len(headers)
    widths = [len(h) for h in headers]
    for row in rows:
        if len(row) != columns:
            raise ValueError(
                f"row has {len(row)} cells, expected {columns}: {row!r}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        parts = [f"{cells[0]:<{widths[0]}}"]
        parts.extend(f"{cell:>{widths[i]}}" for i, cell in enumerate(cells) if i)
        return "  ".join(parts)

    lines = [fmt(headers), "-" * (sum(widths) + 2 * (columns - 1))]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


@dataclass
class ExperimentResult:
    """One regenerated paper artifact."""

    experiment_id: str
    title: str
    headers: List[str]
    rows: List[List[str]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def format(self) -> str:
        lines = [f"== {self.experiment_id}: {self.title} =="]
        lines.append(render_table(self.headers, self.rows))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-serializable form (for artifact files and cell payloads)."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "headers": list(self.headers),
            "rows": [list(row) for row in self.rows],
            "notes": list(self.notes),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ExperimentResult":
        return cls(
            experiment_id=payload["experiment_id"],
            title=payload["title"],
            headers=list(payload["headers"]),
            rows=[list(row) for row in payload["rows"]],
            notes=list(payload["notes"]),
        )

    def cell(self, row_label: str, header: str) -> str:
        """Look up a cell by row label and column header (for tests)."""
        column = self.headers.index(header)
        for row in self.rows:
            if row[0] == row_label:
                return row[column]
        raise KeyError(f"no row labelled {row_label!r}")
