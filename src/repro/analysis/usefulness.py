"""Correct-but-useless predictions — the paper's novel observation,
made a first-class metric.

    "There are a significant number of cases where the dependent
    instructions are fetched too late to the processor and all their
    input values become ready [...]. In all these cases, even though
    the predictor yields a correct prediction, the prediction becomes
    useless."

A correct prediction of producer *p* is **useful** when at least one of
its consumers *c* could not have had the real value at its earliest
issue opportunity: ``exec_done(p) > fetch(c) + 2`` in the baseline
(no-VP) schedule. Otherwise the machine's fetch bandwidth already
serialized the pair and the prediction is *useless*. The fraction of
useless correct predictions falls as the fetch rate grows — this is
the mechanism behind Figure 3.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.config import IdealConfig
from repro.core.ideal import ScheduleDetail, simulate_ideal
from repro.trace.trace import Trace


@dataclass
class UsefulnessStats:
    """Outcome of :func:`useless_prediction_stats` at one fetch rate."""

    fetch_rate: int
    correct_predictions: int
    useful: int

    @property
    def useless(self) -> int:
        return self.correct_predictions - self.useful

    @property
    def useless_fraction(self) -> float:
        if self.correct_predictions == 0:
            return 0.0
        return self.useless / self.correct_predictions


def useless_prediction_stats(
    trace: Trace,
    vp_plan: Tuple[List[bool], List[bool]],
    fetch_rate: int,
    window: int = 40,
) -> UsefulnessStats:
    """Classify each correct prediction as useful or useless at this rate.

    The baseline (no-VP) schedule decides: a correct prediction helps
    only if some consumer is fetched early enough that the true value
    would not have arrived by its earliest issue.
    """
    detail = ScheduleDetail()
    simulate_ideal(
        trace,
        IdealConfig(fetch_rate=fetch_rate, window=window),
        detail=detail,
    )
    attempted, correct = vp_plan

    last_write: Dict[int, int] = {}
    useful = [False] * len(trace)
    correct_producers = 0
    seen = [False] * len(trace)
    for record in trace:
        for src in record.srcs:
            producer = last_write.get(src)
            if producer is None:
                continue
            if not (attempted[producer] and correct[producer]):
                continue
            if detail.exec_done[producer] > detail.fetch[record.seq] + 2:
                useful[producer] = True
        if record.dest is not None:
            if attempted[record.seq] and correct[record.seq] and not seen[record.seq]:
                seen[record.seq] = True
                correct_producers += 1
            last_write[record.dest] = record.seq

    return UsefulnessStats(
        fetch_rate=fetch_rate,
        correct_predictions=correct_producers,
        useful=sum(1 for p, flag in enumerate(useful) if flag and seen[p]),
    )
