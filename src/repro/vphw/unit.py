"""Assembled value-prediction units consumed by the timing cores.

A VP unit sees each fetch block once, in trace order:

* :meth:`predict_block` — what the hardware would predict for each slot
  of the block (before any of the block's instructions execute),
* :meth:`train_block` — table/classifier update with actual outcomes.

The split keeps lookup strictly before update inside a cycle, which is
what makes multiple copies of one instruction in a block interesting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.trace.record import DynInstr
from repro.vpred.base import ValuePredictor
from repro.vpred.classifier import SaturatingClassifier
from repro.vphw.distributor import ValueDistributor
from repro.vphw.router import AddressRouter


@dataclass
class VPUnitStats:
    """Per-run counters of a VP unit."""

    candidates: int = 0        # value-producing slots seen
    requests: int = 0          # slots that issued a table request
    denied: int = 0            # slots denied by bank conflicts
    merged: int = 0            # slots served by a merged access
    predictions: int = 0       # slots that received a (classified) value
    correct: int = 0           # ... that matched the actual outcome

    @property
    def accuracy(self) -> float:
        return self.correct / self.predictions if self.predictions else 0.0

    @property
    def denial_rate(self) -> float:
        return self.denied / self.requests if self.requests else 0.0


class AbstractVPUnit:
    """Conventional conflict-free value prediction (Sections 3/5.1/5.2).

    Wraps any :class:`ValuePredictor` (typically already classified).
    Every value-producing slot gets a lookup with *speculative update
    after the lookup* — the paper's stated discipline — so when a fetch
    block carries several copies of one instruction, each copy sees the
    previous copy's update (the idealization whose hardware realization
    is Section 4's router/distributor, modelled by :class:`BankedVPUnit`).
    """

    def __init__(self, predictor: ValuePredictor):
        self.predictor = predictor
        self.stats = VPUnitStats()

    def predict_block(self, records: Sequence[DynInstr]) -> Dict[int, int]:
        predictions: Dict[int, int] = {}
        for record in records:
            if record.dest is None:
                continue
            self.stats.candidates += 1
            self.stats.requests += 1
            predicted = self.predictor.lookup_and_update(record.pc, record.value)
            if predicted is None:
                continue
            predictions[record.seq] = predicted
            self.stats.predictions += 1
            if predicted == record.value:
                self.stats.correct += 1
        return predictions

    def train_block(self, records: Sequence[DynInstr]) -> None:
        """Training already happened speculatively during the lookups."""


class BankedVPUnit:
    """The Section 4 banked table + router + distributor assembly.

    ``predictor`` must expose ``entry(pc) -> (last, stride)`` (stride or
    hybrid predictors do). ``hints`` optionally filters candidates
    before routing — the opcode-hint offload of Section 4.2. Slots
    denied by bank conflicts receive no prediction, which is how the
    hardware's limits feed back into the timing model.
    """

    def __init__(
        self,
        predictor,
        router: Optional[AddressRouter] = None,
        classifier: Optional[SaturatingClassifier] = None,
        hints: Optional[Dict[int, str]] = None,
        merge_requests: bool = True,
    ):
        self.predictor = predictor
        self.router = router or AddressRouter()
        self.distributor = ValueDistributor()
        self.classifier = classifier or SaturatingClassifier()
        self.hints = hints
        self.merge_requests = merge_requests
        self.stats = VPUnitStats()

    def _is_candidate(self, record: DynInstr) -> bool:
        if record.dest is None:
            return False
        if self.hints is not None and self.hints.get(record.pc) == "none":
            return False
        return True

    def predict_block(self, records: Sequence[DynInstr]) -> Dict[int, int]:
        requests = []
        by_seq: Dict[int, DynInstr] = {}
        for slot, record in enumerate(records):
            if record.dest is None:
                continue
            self.stats.candidates += 1
            if not self._is_candidate(record):
                continue
            self.stats.requests += 1
            requests.append((slot, record.pc))
            by_seq[slot] = record

        if not self.merge_requests:
            # Ablation: duplicate PCs are not merged; copies beyond the
            # first fight for the same bank port and lose.
            outcome = self.router.route([(s, pc) for s, pc in requests])
            seen = {}
            kept = []
            for access in outcome.accesses:
                first = access.slots[0]
                for extra in access.slots[1:]:
                    outcome.denied_slots.append(extra)
                access.slots = [first]
                kept.append(access)
            outcome.accesses = kept
        else:
            outcome = self.router.route(requests)

        self.stats.denied += len(outcome.denied_slots)
        self.stats.merged += outcome.n_merged_requests
        raw = self.distributor.distribute(outcome, self.predictor)

        predictions: Dict[int, int] = {}
        for slot, value in raw.items():
            record = by_seq[slot]
            if not self.classifier.allows(record.pc):
                continue
            predictions[record.seq] = value
            self.stats.predictions += 1
            if value == record.value:
                self.stats.correct += 1
        return predictions

    def train_block(self, records: Sequence[DynInstr]) -> None:
        for record in records:
            if record.dest is None:
                continue
            if self.hints is not None and self.hints.get(record.pc) == "none":
                continue
            raw = self.predictor.peek(record.pc)
            if raw is not None:
                self.classifier.train(record.pc, raw == record.value)
            self.predictor.update(record.pc, record.value)
