"""The Section 4 value-prediction hardware for wide-fetch processors.

When fetch crosses multiple taken branches per cycle, several copies of
the same instruction (loop iterations) can arrive together and an
interleaved prediction table sees bank conflicts. The paper's solution:

* a **trace addresses buffer** latches the PCs of the fetched trace,
* an **address router** distributes them to the table banks, granting
  the earliest instruction on a different-PC conflict and *merging*
  same-PC requests into a single access,
* a **value distributor** re-maps banked results onto trace slots,
  expanding a merged stride access into last+Δ, last+2Δ, ... and raising
  a valid bit only for slots whose request was actually served.

:class:`AbstractVPUnit` models the conventional (conflict-free) lookup
used in Sections 3/5.1/5.2; :class:`BankedVPUnit` is the proposed
hardware and exposes its conflict statistics for the ablation benches.
"""

from repro.vphw.router import AddressRouter, RoutedAccess, RoutingOutcome
from repro.vphw.distributor import ValueDistributor
from repro.vphw.unit import AbstractVPUnit, BankedVPUnit, VPUnitStats

__all__ = [
    "AddressRouter",
    "RoutedAccess",
    "RoutingOutcome",
    "ValueDistributor",
    "AbstractVPUnit",
    "BankedVPUnit",
    "VPUnitStats",
]
