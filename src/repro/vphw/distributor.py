"""The value distributor: banked table results -> per-slot predictions."""

from __future__ import annotations

from typing import Dict, Optional, Protocol, Tuple

from repro.vphw.router import RoutingOutcome

_MASK64 = (1 << 64) - 1


class _EntryReader(Protocol):
    """What the distributor needs from the prediction table: the stored
    (last value, stride) pair of a PC, or None when there is no usable
    entry. Stride predictors expose this as ``entry``; for a pure
    last-value table the stride is 0 and the distributor degenerates to
    replicating the same value (the paper's argument for the hybrid)."""

    def entry(self, pc: int) -> Optional[Tuple[int, int]]: ...


class ValueDistributor:
    """Expands routed accesses into per-trace-slot predicted values.

    For an access serving slots s0 < s1 < ... (merged copies of one
    instruction), the k-th copy receives ``last + (k+1) * stride`` —
    the X, X+Δ, X+2Δ sequence of Figure 4.2/4.3. Slots denied by the
    router simply receive no value (valid bit low). The distributor
    counts its adder work so the hybrid-predictor saving is measurable.
    """

    def __init__(self):
        self.sequence_computations = 0

    def distribute(
        self, outcome: RoutingOutcome, table: _EntryReader
    ) -> Dict[int, int]:
        """slot -> predicted value for one cycle's routing outcome."""
        predictions: Dict[int, int] = {}
        for access in outcome.accesses:
            entry = table.entry(access.pc)
            if entry is None:
                continue
            last, stride = entry
            for k, slot in enumerate(access.slots):
                predictions[slot] = (last + (k + 1) * stride) & _MASK64
                if k > 0 and stride != 0:
                    self.sequence_computations += 1
        return predictions
