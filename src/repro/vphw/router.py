"""The address router: trace PCs -> prediction-table bank accesses."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.errors import ConfigError


@dataclass
class RoutedAccess:
    """One granted table access: a PC and the trace slots it serves.

    Multiple slots mean same-PC requests were merged (the loop-copies
    case of Figure 4.2); slot order is trace order, which the value
    distributor relies on when expanding stride sequences.
    """

    pc: int
    bank: int
    slots: List[int]

    @property
    def merged(self) -> bool:
        return len(self.slots) > 1


@dataclass
class RoutingOutcome:
    """Result of routing one fetch block."""

    accesses: List[RoutedAccess] = field(default_factory=list)
    denied_slots: List[int] = field(default_factory=list)

    @property
    def n_merged_requests(self) -> int:
        return sum(len(a.slots) - 1 for a in self.accesses if a.merged)


class AddressRouter:
    """Routes one cycle's instruction addresses to table banks.

    Bank selection is a modulo on the word address (the paper's
    "low-order bits"). Conflicts between *different* PCs mapping to the
    same bank are resolved by priority: the earlier instruction in the
    trace wins, later ones are denied (their valid bit will stay low).
    Same-PC requests merge into a single access.
    """

    def __init__(self, n_banks: int = 16, ports_per_bank: int = 1):
        if n_banks < 1 or n_banks & (n_banks - 1):
            raise ConfigError("n_banks must be a positive power of two")
        if ports_per_bank < 1:
            raise ConfigError("ports_per_bank must be >= 1")
        self.n_banks = n_banks
        self.ports_per_bank = ports_per_bank

    def bank_of(self, pc: int) -> int:
        return (pc >> 2) & (self.n_banks - 1)

    def route(self, requests: Sequence[Tuple[int, int]]) -> RoutingOutcome:
        """Route ``(slot, pc)`` requests for one cycle.

        Slots must be given in trace order; the outcome preserves that
        order inside each merged access.
        """
        outcome = RoutingOutcome()
        by_pc: Dict[int, RoutedAccess] = {}
        bank_load: Dict[int, int] = {}
        for slot, pc in requests:
            access = by_pc.get(pc)
            if access is not None:
                access.slots.append(slot)     # merge same-PC request
                continue
            bank = self.bank_of(pc)
            if bank_load.get(bank, 0) >= self.ports_per_bank:
                outcome.denied_slots.append(slot)
                continue
            access = RoutedAccess(pc=pc, bank=bank, slots=[slot])
            by_pc[pc] = access
            bank_load[bank] = bank_load.get(bank, 0) + 1
            outcome.accesses.append(access)
        return outcome
