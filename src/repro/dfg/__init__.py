"""Dataflow-graph analysis over dynamic traces (Section 3 of the paper).

The dataflow graph is built from the *entire execution trace*, regardless
of basic-block boundaries, so loop-carried and inter-block dependencies
are included — exactly the construction the paper describes for its
Dynamic Instruction Distance (DID) measurements.
"""

from repro.dfg.graph import DependenceGraph, build_dfg
from repro.dfg.did import DIDHistogram, average_did, did_values, DEFAULT_BINS
from repro.dfg.predictability import (
    ArcClass,
    PredictabilityBreakdown,
    classify_arcs,
    mark_predictable_producers,
)

__all__ = [
    "DependenceGraph",
    "build_dfg",
    "DIDHistogram",
    "average_did",
    "did_values",
    "DEFAULT_BINS",
    "ArcClass",
    "PredictabilityBreakdown",
    "classify_arcs",
    "mark_predictable_producers",
]
