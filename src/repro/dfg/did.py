"""Dynamic Instruction Distance statistics (Figures 3.3 and 3.4)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.dfg.graph import DependenceGraph

# Bin lower edges: [1], [2], [3], [4..7], [8..15], [16..31], [32..inf).
DEFAULT_BINS: Tuple[int, ...] = (1, 2, 3, 4, 8, 16, 32)


def did_values(graph: DependenceGraph) -> List[int]:
    """DID of every arc, in arc order."""
    return [c - p for p, c in graph.arcs()]


def average_did(graph: DependenceGraph) -> float:
    """Arithmetic mean DID over all arcs (the Figure 3.3 metric)."""
    if graph.n_arcs == 0:
        return 0.0
    return sum(did_values(graph)) / graph.n_arcs


@dataclass
class DIDHistogram:
    """Distribution of arcs over DID bins (the Figure 3.4 histogram)."""

    bin_edges: Tuple[int, ...]
    counts: List[int]
    total: int

    @classmethod
    def from_graph(
        cls, graph: DependenceGraph, bin_edges: Sequence[int] = DEFAULT_BINS
    ) -> "DIDHistogram":
        edges = tuple(bin_edges)
        if not edges or list(edges) != sorted(set(edges)) or edges[0] < 1:
            raise ValueError("bin edges must be unique, ascending, and >= 1")
        counts = [0] * len(edges)
        for did in did_values(graph):
            counts[_bin_index(did, edges)] += 1
        return cls(bin_edges=edges, counts=counts, total=graph.n_arcs)

    def labels(self) -> List[str]:
        """Human-readable bin labels ("1", "4-7", ">=32"...)."""
        labels = []
        for i, low in enumerate(self.bin_edges):
            if i + 1 < len(self.bin_edges):
                high = self.bin_edges[i + 1] - 1
                labels.append(str(low) if high == low else f"{low}-{high}")
            else:
                labels.append(f">={low}")
        return labels

    def fractions(self) -> List[float]:
        """Per-bin fraction of all arcs."""
        if self.total == 0:
            return [0.0] * len(self.counts)
        return [count / self.total for count in self.counts]

    def fraction_at_least(self, did: int) -> float:
        """Fraction of arcs with DID >= ``did``.

        ``did`` must be a bin edge; the paper's headline statistic is
        ``fraction_at_least(4)`` ≈ 60 % on average.
        """
        if did not in self.bin_edges:
            raise ValueError(f"{did} is not a bin edge of this histogram")
        if self.total == 0:
            return 0.0
        start = self.bin_edges.index(did)
        return sum(self.counts[start:]) / self.total


def _bin_index(did: int, edges: Tuple[int, ...]) -> int:
    index = 0
    for i, low in enumerate(edges):
        if did >= low:
            index = i
        else:
            break
    return index
