"""Arc classification by value predictability and DID (Figure 3.5)."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.dfg.did import DEFAULT_BINS
from repro.dfg.graph import DependenceGraph, build_dfg
from repro.trace.trace import Trace
from repro.vpred.base import ValuePredictor
from repro.vpred.stride import StridePredictor


class ArcClass(enum.Enum):
    """The Figure 3.5 categories."""

    UNPREDICTABLE = "unpredictable"
    PREDICTABLE_SHORT = "predictable, DID < 4"
    PREDICTABLE_LONG = "predictable, DID >= 4"


def mark_predictable_producers(
    trace: Trace, predictor: Optional[ValuePredictor] = None
) -> List[bool]:
    """Per dynamic instruction: was its result correctly value-predicted?

    Uses an infinite stride predictor by default, as the paper does when
    marking value-predictable arcs. Non-producers are marked False.
    """
    predictor = predictor or StridePredictor()
    marks = [False] * len(trace)
    for record in trace:
        if record.dest is None:
            continue
        predicted = predictor.lookup_and_update(record.pc, record.value)
        marks[record.seq] = predicted is not None and predicted == record.value
    return marks


@dataclass
class PredictabilityBreakdown:
    """Fractions of dependence arcs per Figure 3.5 class, plus a DID
    histogram restricted to the predictable arcs."""

    total_arcs: int
    counts: Dict[ArcClass, int]
    predictable_did_counts: List[int]     # per DEFAULT-style bin
    bin_edges: Sequence[int]

    def fraction(self, klass: ArcClass) -> float:
        if self.total_arcs == 0:
            return 0.0
        return self.counts.get(klass, 0) / self.total_arcs

    @property
    def fraction_predictable(self) -> float:
        return self.fraction(ArcClass.PREDICTABLE_SHORT) + self.fraction(
            ArcClass.PREDICTABLE_LONG
        )

    def predictable_did_fractions(self) -> List[float]:
        """Per-bin fraction (of *all* arcs) for predictable arcs by DID."""
        if self.total_arcs == 0:
            return [0.0] * len(self.predictable_did_counts)
        return [c / self.total_arcs for c in self.predictable_did_counts]


def classify_arcs(
    trace: Trace,
    graph: Optional[DependenceGraph] = None,
    predictor: Optional[ValuePredictor] = None,
    short_did: int = 4,
    bin_edges: Sequence[int] = DEFAULT_BINS,
) -> PredictabilityBreakdown:
    """Scan all arcs and classify them, as described under Figure 3.5.

    An arc is *value predictable* when the stride predictor correctly
    predicted its producer's result for that dynamic instance; the
    predictable arcs are then split at DID ``short_did`` (the current
    4-wide fetch bandwidth) and additionally histogrammed by DID bin.
    """
    graph = graph or build_dfg(trace)
    marks = mark_predictable_producers(trace, predictor)
    edges = tuple(bin_edges)

    counts: Dict[ArcClass, int] = {klass: 0 for klass in ArcClass}
    did_counts = [0] * len(edges)
    for producer, consumer in graph.arcs():
        did = consumer - producer
        if not marks[producer]:
            counts[ArcClass.UNPREDICTABLE] += 1
            continue
        if did < short_did:
            counts[ArcClass.PREDICTABLE_SHORT] += 1
        else:
            counts[ArcClass.PREDICTABLE_LONG] += 1
        index = 0
        for i, low in enumerate(edges):
            if did >= low:
                index = i
        did_counts[index] += 1

    return PredictabilityBreakdown(
        total_arcs=graph.n_arcs,
        counts=counts,
        predictable_did_counts=did_counts,
        bin_edges=edges,
    )
