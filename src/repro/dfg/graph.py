"""Dependence-graph construction over a dynamic trace."""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from repro.trace.trace import Trace


class DependenceGraph:
    """True-data-dependence arcs of a trace.

    Nodes are dynamic instructions identified by their trace sequence
    number (the paper's "appearance order number"); each arc
    ``(producer, consumer)`` records that the consumer read a register
    value the producer wrote. With ``include_memory``, store→load arcs
    through the same address are added as well (off by default — the
    paper studies register dataflow).
    """

    def __init__(self, producers: List[int], consumers: List[int], n_nodes: int):
        if len(producers) != len(consumers):
            raise ValueError("producer/consumer arrays differ in length")
        self.producers = producers
        self.consumers = consumers
        self.n_nodes = n_nodes

    @property
    def n_arcs(self) -> int:
        return len(self.producers)

    def arcs(self) -> Iterator[Tuple[int, int]]:
        """Iterate ``(producer_seq, consumer_seq)`` pairs."""
        return zip(self.producers, self.consumers)

    def did(self, arc_index: int) -> int:
        """The Dynamic Instruction Distance of one arc (Equation 3.1)."""
        return abs(self.consumers[arc_index] - self.producers[arc_index])

    def to_networkx(self):
        """Export to a ``networkx.DiGraph`` (analysis convenience)."""
        import networkx as nx

        graph = nx.DiGraph()
        graph.add_nodes_from(range(self.n_nodes))
        graph.add_edges_from(self.arcs())
        return graph


def build_dfg(trace: Trace, include_memory: bool = False) -> DependenceGraph:
    """Construct the dependence graph of ``trace``.

    Register arcs: consumer reads register r → arc from the most recent
    earlier writer of r (none if r was never written in the trace).
    Memory arcs (optional): load from address a → arc from the most
    recent earlier store to a.
    """
    last_write: Dict[int, int] = {}
    last_store: Dict[int, int] = {}
    producers: List[int] = []
    consumers: List[int] = []

    for record in trace:
        seq = record.seq
        for src in record.srcs:
            producer = last_write.get(src)
            if producer is not None:
                producers.append(producer)
                consumers.append(seq)
        if include_memory and record.is_load and record.mem_addr is not None:
            producer = last_store.get(record.mem_addr)
            if producer is not None:
                producers.append(producer)
                consumers.append(seq)
        if record.dest is not None:
            last_write[record.dest] = seq
        if include_memory and record.is_store and record.mem_addr is not None:
            last_store[record.mem_addr] = seq

    return DependenceGraph(producers, consumers, n_nodes=len(trace))
