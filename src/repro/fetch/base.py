"""Fetch-engine interface and the fetch-plan data model."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import List, Optional

from repro.bpred.base import BranchPredictor
from repro.trace.trace import Trace


@dataclass
class FetchBlock:
    """One cycle's worth of fetched instructions.

    ``start`` and ``length`` index into the trace. ``mispredict_seq`` is
    the sequence number of a mispredicted control instruction ending the
    block (fetch then stalls until that branch resolves plus the branch
    penalty). ``source`` tags where the block came from ("seq",
    "tc_hit", "tc_miss") for statistics.
    """

    start: int
    length: int
    mispredict_seq: Optional[int] = None
    source: str = "seq"

    @property
    def end(self) -> int:
        return self.start + self.length


@dataclass
class FetchPlan:
    """The per-cycle fetch schedule for a whole trace.

    ``lookups`` records how many branch-predictor predictions the
    planning pass made (every engine fills it in); consumers deriving
    an accuracy from the plan use it as the denominator rather than
    re-deriving the predictor's lookup policy.  Hand-built plans may
    leave it None.
    """

    blocks: List[FetchBlock] = field(default_factory=list)
    lookups: Optional[int] = None

    def __iter__(self):
        return iter(self.blocks)

    def __len__(self) -> int:
        return len(self.blocks)

    def validate(self, n_records: int) -> None:
        """Blocks must tile the trace contiguously — an internal check."""
        cursor = 0
        for block in self.blocks:
            if block.start != cursor or block.length < 1:
                raise ValueError(
                    f"fetch plan is not contiguous at seq {cursor} "
                    f"(block start {block.start}, length {block.length})"
                )
            cursor = block.end
        if cursor != n_records:
            raise ValueError(
                f"fetch plan covers {cursor} of {n_records} records"
            )

    def mean_block_size(self) -> float:
        if not self.blocks:
            return 0.0
        total = sum(block.length for block in self.blocks)
        return total / len(self.blocks)


class FetchEngine(abc.ABC):
    """Builds the fetch plan for a trace under a branch predictor.

    Planning is timing-independent: predictor training and (for the
    trace cache) fill-unit contents depend only on the correct-path
    instruction order, so the plan can be computed in a single pre-pass
    and consumed by the timing core.
    """

    @abc.abstractmethod
    def plan(self, trace: Trace, bpred: BranchPredictor) -> FetchPlan:
        """Chunk ``trace`` into per-cycle fetch blocks."""
