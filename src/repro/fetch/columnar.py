"""Columnar fetch-plan construction for the stateless fetch engines.

In every fetch engine each trace record is consumed exactly once, in
trace order, and the branch predictor is consulted exactly once per
consumed control record — so the stream of predictor outcomes does not
depend on how records fall into blocks.  That lets planning split into
two passes:

1. :func:`control_outcomes` — run the predictor over just the control
   records (or, for :class:`PerfectBranchPredictor`, update its
   statistics in bulk), yielding the mispredicted positions;
2. an event-based partition: block boundaries are determined by a
   handful of precomputed position lists (mispredictions, taken
   redirects, cache-line crossings) instead of a per-record walk.

Only the stateless engines are planned this way; the trace cache's fill
unit carries state across blocks and keeps its reference planner.  The
resulting plans are field-for-field identical to the reference
planners' — same blocks, same ``mispredict_seq`` tie-breaking, same
predictor statistics — which the backend parity suite asserts.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.bpred.base import BranchPredictor
from repro.bpred.perfect import PerfectBranchPredictor
from repro.fetch.base import FetchBlock, FetchEngine, FetchPlan

try:
    import numpy as np
except ImportError:  # pragma: no cover - engines then use reference plans
    np = None  # type: ignore[assignment]


def columns_for_fast_plan(trace):
    """The trace's columnar view when event planning is possible."""
    if np is None:
        return None
    cols = trace.columns()
    if cols is None or not cols.vec:
        return None
    return cols


def control_outcomes(
    trace, cols, bpred: BranchPredictor
) -> Tuple[list, list, int]:
    """Positions of control records, their prediction outcomes, and the
    number of predictor lookups the pass performed.

    The predictor is trained exactly as the reference planners train it
    (one ``predict_and_update`` per control record in trace order);
    the perfect predictor short-circuits to bulk statistics.
    """
    ctrl = np.flatnonzero(cols.is_control).tolist()
    if type(bpred) is PerfectBranchPredictor:
        n_cond = int(cols.is_cond_branch.sum())
        n_ind = int(cols.is_indirect.sum())
        stats = bpred.stats
        stats.conditional += n_cond
        stats.conditional_correct += n_cond
        stats.indirect += n_ind
        stats.indirect_correct += n_ind
        return ctrl, [True] * len(ctrl), n_cond + n_ind
    records = trace.records
    before = bpred.stats.lookups
    outcomes = [bpred.predict_and_update(records[i]) for i in ctrl]
    return ctrl, outcomes, bpred.stats.lookups - before


def plan_sequential(
    trace, cols, bpred: BranchPredictor,
    width: int, max_taken: Optional[int],
) -> FetchPlan:
    """Event-based :class:`SequentialFetchEngine` planning.

    A block ends at the width cap, one past a mispredicted control
    record, or one past the ``max_taken``-th taken redirect — whichever
    comes first, with a misprediction coinciding with the block's final
    slot still recorded as ``mispredict_seq`` (the reference walk's tie
    semantics).
    """
    ctrl, outcomes, lookups = control_outcomes(trace, cols, bpred)
    mis = [pos for pos, ok in zip(ctrl, outcomes) if not ok]
    red = np.flatnonzero(cols.taken).tolist()
    n = cols.n
    nm = len(mis)
    nr = len(red)
    blocks = []
    cursor = 0
    mi = 0
    ri = 0
    while cursor < n:
        end = cursor + width
        if end > n:
            end = n
        while mi < nm and mis[mi] < cursor:
            mi += 1
        if mi < nm and mis[mi] + 1 < end:
            end = mis[mi] + 1
        if max_taken is not None:
            while ri < nr and red[ri] < cursor:
                ri += 1
            cap = ri + max_taken - 1
            if cap < nr and red[cap] + 1 < end:
                end = red[cap] + 1
        mispredict_seq = mis[mi] if mi < nm and mis[mi] + 1 == end else None
        blocks.append(FetchBlock(
            start=cursor, length=end - cursor,
            mispredict_seq=mispredict_seq, source="seq",
        ))
        cursor = end
    plan = FetchPlan(blocks)
    plan.lookups = lookups
    return plan


def plan_collapsing(
    trace, cols, bpred: BranchPredictor,
    line_size: int, max_lines: int, width: int,
) -> FetchPlan:
    """Event-based :class:`CollapsingBufferFetchEngine` planning.

    A line slot is charged at position ``i`` exactly when the reference
    walk would consume one there: the record sits in a different cache
    line than its predecessor, or its predecessor redirected fetch (a
    taken transfer's target always claims a fresh slot, even within the
    same line).  The block's first record never charges (slot one is the
    block's own); a block ends where charging would exceed
    ``max_lines`` — or at the width cap or a misprediction, as in the
    sequential engine.
    """
    ctrl, outcomes, lookups = control_outcomes(trace, cols, bpred)
    mis = [pos for pos, ok in zip(ctrl, outcomes) if not ok]
    n = cols.n
    line_id = cols.pc // (4 * line_size)
    charge = np.empty(n, dtype=bool)
    if n:
        charge[0] = False
        charge[1:] = (line_id[1:] != line_id[:-1]) | cols.taken[:-1]
    events = np.flatnonzero(charge).tolist()
    ne = len(events)
    nm = len(mis)
    blocks = []
    cursor = 0
    mi = 0
    ei = 0
    while cursor < n:
        end = cursor + width
        if end > n:
            end = n
        while mi < nm and mis[mi] < cursor:
            mi += 1
        if mi < nm and mis[mi] + 1 < end:
            end = mis[mi] + 1
        while ei < ne and events[ei] <= cursor:
            ei += 1
        cap = ei + max_lines - 1
        if cap < ne and events[cap] < end:
            end = events[cap]
        mispredict_seq = mis[mi] if mi < nm and mis[mi] + 1 == end else None
        blocks.append(FetchBlock(
            start=cursor, length=end - cursor,
            mispredict_seq=mispredict_seq, source="cb",
        ))
        cursor = end
    plan = FetchPlan(blocks)
    plan.lookups = lookups
    return plan
