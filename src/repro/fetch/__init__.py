"""Instruction-fetch engines.

A fetch engine turns the correct-path trace plus a branch predictor into
a :class:`FetchPlan`: the sequence of per-cycle fetch blocks the timing
core consumes. Two engines are provided — conventional sequential fetch
with width / taken-branch caps (Sections 5.1–5.2) and a trace cache with
a fill unit (Section 5.3, after Rotenberg et al. [18]).
"""

from repro.fetch.base import FetchBlock, FetchEngine, FetchPlan
from repro.fetch.sequential import SequentialFetchEngine
from repro.fetch.collapsing import CollapsingBufferFetchEngine
from repro.fetch.trace_cache import TraceCache, TraceCacheFetchEngine, TraceCacheStats

__all__ = [
    "FetchBlock",
    "FetchEngine",
    "FetchPlan",
    "SequentialFetchEngine",
    "CollapsingBufferFetchEngine",
    "TraceCache",
    "TraceCacheFetchEngine",
    "TraceCacheStats",
]
