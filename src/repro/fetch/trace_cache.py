"""Trace cache fetch engine (Rotenberg, Bennett & Smith [18]).

Configuration used by the paper's Section 5.3: 64 entries, direct
mapped, each line holding up to 32 instructions from up to 6 basic
blocks. A fill unit assembles lines from the fetched correct-path
stream; lines end early at indirect jumps (their targets cannot be
embedded in the line). On a miss, fetch falls back to the conventional
instruction cache, which supplies one contiguous run up to the first
taken branch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.bpred.base import BranchPredictor
from repro.errors import ConfigError
from repro.fetch.base import FetchBlock, FetchEngine, FetchPlan
from repro.trace.record import DynInstr
from repro.trace.trace import Trace


@dataclass
class _TCLine:
    """One trace-cache line: the recorded path from ``tag``."""

    tag: int
    pcs: List[int]


@dataclass
class TraceCacheStats:
    """Lookup/usefulness counters for one planning run."""

    lookups: int = 0
    hits: int = 0
    supplied_from_tc: int = 0     # instructions delivered by TC hits
    supplied_from_ic: int = 0     # instructions delivered by miss fallback
    fills: int = 0
    divergences: int = 0          # hits truncated by path divergence

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class TraceCache:
    """The line store plus its fill unit."""

    def __init__(
        self,
        n_entries: int = 64,
        line_size: int = 32,
        max_blocks: int = 6,
    ):
        if n_entries < 1 or line_size < 1 or max_blocks < 1:
            raise ConfigError("trace cache parameters must be positive")
        self.n_entries = n_entries
        self.line_size = line_size
        self.max_blocks = max_blocks
        self._lines: Dict[int, _TCLine] = {}
        # Fill unit state.
        self._pending_pcs: List[int] = []
        self._pending_blocks = 0
        self.fills = 0

    def _index(self, pc: int) -> int:
        return (pc >> 2) % self.n_entries

    def lookup(self, pc: int) -> Optional[List[int]]:
        """The recorded path starting at ``pc``, if a line matches."""
        line = self._lines.get(self._index(pc))
        if line is None or line.tag != pc:
            return None
        return line.pcs

    # -- fill unit ------------------------------------------------------

    def fill(self, record: DynInstr) -> None:
        """Feed one fetched correct-path instruction to the fill unit."""
        self._pending_pcs.append(record.pc)
        finalize = False
        if record.is_control:
            self._pending_blocks += 1
            if record.op.value in ("jr", "jalr"):
                finalize = True       # indirect target: line must end
            elif self._pending_blocks >= self.max_blocks:
                finalize = True
        if len(self._pending_pcs) >= self.line_size:
            finalize = True
        if finalize:
            self._finalize()

    def _finalize(self) -> None:
        if not self._pending_pcs:
            return
        tag = self._pending_pcs[0]
        self._lines[self._index(tag)] = _TCLine(tag, self._pending_pcs)
        self.fills += 1
        self._pending_pcs = []
        self._pending_blocks = 0

    def reset(self) -> None:
        self._lines.clear()
        self._pending_pcs = []
        self._pending_blocks = 0
        self.fills = 0


class TraceCacheFetchEngine(FetchEngine):
    """Fetch through a trace cache with sequential-fetch fallback."""

    def __init__(
        self,
        n_entries: int = 64,
        line_size: int = 32,
        max_blocks: int = 6,
        fallback_width: int = 16,
    ):
        self.cache = TraceCache(n_entries, line_size, max_blocks)
        if fallback_width < 1:
            raise ConfigError("fallback width must be >= 1")
        self.fallback_width = fallback_width
        self.stats = TraceCacheStats()

    def plan(self, trace: Trace, bpred: BranchPredictor) -> FetchPlan:
        self.cache.reset()
        self.stats = TraceCacheStats()
        plan = FetchPlan()
        before = bpred.stats.lookups
        records = trace.records
        n = len(records)
        cursor = 0
        while cursor < n:
            start = cursor
            record = records[cursor]
            self.stats.lookups += 1
            line_pcs = self.cache.lookup(record.pc)
            mispredict_seq = None
            if line_pcs is not None:
                self.stats.hits += 1
                source = "tc_hit"
                # Supply the line up to path divergence, a misprediction,
                # or the end of the trace.
                limit = min(len(line_pcs), n - cursor)
                matched = 0
                while matched < limit:
                    rec = records[cursor]
                    if rec.pc != line_pcs[matched]:
                        self.stats.divergences += 1
                        break
                    cursor += 1
                    matched += 1
                    self.cache.fill(rec)
                    if rec.is_control:
                        if not bpred.predict_and_update(rec):
                            mispredict_seq = rec.seq
                            break
                if matched == 0:
                    # Divergence on the very first slot: treat as an IC
                    # fetch of that one instruction so fetch progresses.
                    rec = records[cursor]
                    cursor += 1
                    self.cache.fill(rec)
                    source = "tc_miss"
                    if rec.is_control and not bpred.predict_and_update(rec):
                        mispredict_seq = rec.seq
                    self.stats.supplied_from_ic += 1
                else:
                    self.stats.supplied_from_tc += matched
            else:
                # Miss: conventional fetch of one contiguous run.
                source = "tc_miss"
                while cursor < n and cursor - start < self.fallback_width:
                    rec = records[cursor]
                    cursor += 1
                    self.cache.fill(rec)
                    if rec.is_control:
                        if not bpred.predict_and_update(rec):
                            mispredict_seq = rec.seq
                            break
                    if rec.redirects_fetch:
                        break
                self.stats.supplied_from_ic += cursor - start
            plan.blocks.append(
                FetchBlock(
                    start=start,
                    length=cursor - start,
                    mispredict_seq=mispredict_seq,
                    source=source,
                )
            )
        self.stats.fills = self.cache.fills
        plan.lookups = bpred.stats.lookups - before
        return plan
