"""Conventional sequential fetch with width and taken-branch caps.

This is the Section 5.1/5.2 fetch mechanism: up to ``width``
instructions per cycle, crossing at most ``max_taken`` taken control
transfers (``None`` = unlimited, the paper's "unlimited" series). Fetch
runs through not-taken conditionals — multiple branch predictions per
cycle are assumed, as in the paper — and a mispredicted control
instruction always ends the block.
"""

from __future__ import annotations

from typing import Optional

from repro.bpred.base import BranchPredictor
from repro.core.backend import resolve_backend
from repro.errors import ConfigError
from repro.fetch.base import FetchBlock, FetchEngine, FetchPlan
from repro.trace.trace import Trace


class SequentialFetchEngine(FetchEngine):
    """Width- and taken-branch-limited contiguous fetch."""

    def __init__(self, width: int = 40, max_taken: Optional[int] = 1):
        if width < 1:
            raise ConfigError("fetch width must be >= 1")
        if max_taken is not None and max_taken < 1:
            raise ConfigError("max_taken must be >= 1 or None")
        self.width = width
        self.max_taken = max_taken

    def plan(
        self,
        trace: Trace,
        bpred: BranchPredictor,
        backend: Optional[str] = None,
    ) -> FetchPlan:
        if resolve_backend(backend) == "columnar":
            from repro.fetch.columnar import (
                columns_for_fast_plan,
                plan_sequential,
            )

            cols = columns_for_fast_plan(trace)
            if cols is not None:
                return plan_sequential(
                    trace, cols, bpred, self.width, self.max_taken
                )
        return self.plan_reference(trace, bpred)

    def plan_reference(self, trace: Trace, bpred: BranchPredictor) -> FetchPlan:
        """The per-record reference walk (also the fallback backend)."""
        plan = FetchPlan()
        before = bpred.stats.lookups
        records = trace.records
        n = len(records)
        cursor = 0
        while cursor < n:
            start = cursor
            taken = 0
            mispredict_seq = None
            while cursor < n and cursor - start < self.width:
                record = records[cursor]
                cursor += 1
                if record.is_control:
                    correct = bpred.predict_and_update(record)
                    if not correct:
                        mispredict_seq = record.seq
                        break
                if record.redirects_fetch:
                    taken += 1
                    if self.max_taken is not None and taken >= self.max_taken:
                        break
            plan.blocks.append(
                FetchBlock(
                    start=start,
                    length=cursor - start,
                    mispredict_seq=mispredict_seq,
                    source="seq",
                )
            )
        plan.lookups = bpred.stats.lookups - before
        return plan
