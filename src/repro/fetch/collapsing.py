"""Branch-address-cache + collapsing-buffer fetch (Yeh/Marr/Patt [28],
Conte et al. [1]).

The Section 2.2 alternative to the trace cache: a multiple-branch
predictor produces the next basic-block addresses, a 2-way interleaved
instruction cache supplies two (possibly noncontiguous) cache lines per
cycle, and a collapsing buffer removes the instructions between a short
forward branch and its target within a line. The paper notes its
Section 4 prediction hardware applies to this engine as well — loop
bodies fetched twice per cycle still duplicate PCs.

Model (trace-driven, correct path): per cycle up to ``max_lines``
noncontiguous runs are fetched. A run ends at a line boundary
(``line_size`` instructions from its start address, aligned) or at a
taken control transfer; starting a new run consumes one of the cycle's
line slots. In-line collapsing means not-taken branches do not end a
run. The cycle also ends at a mispredicted branch or when ``width``
instructions are buffered.
"""

from __future__ import annotations

from typing import Optional

from repro.bpred.base import BranchPredictor
from repro.core.backend import resolve_backend
from repro.errors import ConfigError
from repro.fetch.base import FetchBlock, FetchEngine, FetchPlan
from repro.trace.trace import Trace


class CollapsingBufferFetchEngine(FetchEngine):
    """Two-line interleaved-cache fetch with a collapsing buffer."""

    def __init__(self, line_size: int = 16, max_lines: int = 2, width: int = 32):
        if line_size < 1 or max_lines < 1 or width < 1:
            raise ConfigError("line_size, max_lines and width must be >= 1")
        self.line_size = line_size
        self.max_lines = max_lines
        self.width = width

    def plan(
        self,
        trace: Trace,
        bpred: BranchPredictor,
        backend: Optional[str] = None,
    ) -> FetchPlan:
        if resolve_backend(backend) == "columnar":
            from repro.fetch.columnar import (
                columns_for_fast_plan,
                plan_collapsing,
            )

            cols = columns_for_fast_plan(trace)
            if cols is not None:
                return plan_collapsing(
                    trace, cols, bpred,
                    self.line_size, self.max_lines, self.width,
                )
        return self.plan_reference(trace, bpred)

    def plan_reference(self, trace: Trace, bpred: BranchPredictor) -> FetchPlan:
        """The per-record reference walk (also the fallback backend)."""
        plan = FetchPlan()
        before = bpred.stats.lookups
        records = trace.records
        n = len(records)
        cursor = 0
        while cursor < n:
            start = cursor
            mispredict_seq = None
            lines_used = 1
            line_start_pc = records[cursor].pc
            line_base = line_start_pc - (line_start_pc % (4 * self.line_size))
            while cursor < n and cursor - start < self.width:
                record = records[cursor]
                # Crossing into a new cache line (sequentially) consumes
                # a line slot too.
                record_base = record.pc - (record.pc % (4 * self.line_size))
                if record_base != line_base:
                    if lines_used >= self.max_lines:
                        break
                    lines_used += 1
                    line_base = record_base
                cursor += 1
                if record.is_control:
                    if not bpred.predict_and_update(record):
                        mispredict_seq = record.seq
                        break
                if record.redirects_fetch:
                    # Taken transfer: the target needs a fresh line slot.
                    if cursor < n:
                        target = records[cursor].pc
                        target_base = target - (target % (4 * self.line_size))
                        if lines_used >= self.max_lines:
                            break
                        lines_used += 1
                        line_base = target_base
            plan.blocks.append(
                FetchBlock(
                    start=start,
                    length=cursor - start,
                    mispredict_seq=mispredict_seq,
                    source="cb",
                )
            )
        plan.lookups = bpred.stats.lookups - before
        return plan
