"""Machine configurations."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class IdealConfig:
    """The Section 3 machine.

    ``fetch_rate`` is the artificial fetch/issue cap (4/8/16/32/40 in
    Figure 3.1); the window is 40 as throughout the paper; taken
    branches per cycle are unlimited; there are no control / name /
    structural hazards. ``value_penalty`` is 0 — Section 3 measures the
    dependence-structure limit, not recovery costs.

    ``memory_dependencies`` extends "true data dependencies" with
    store→load arcs through the same address (a load's *consumers*
    escape that serialization when the load's value is predicted —
    load value prediction in the sense of Lipasti et al. [13]).
    """

    fetch_rate: int = 4
    window: int = 40
    value_penalty: int = 0
    memory_dependencies: bool = True

    def validate(self) -> None:
        if self.fetch_rate < 1:
            raise ConfigError("fetch_rate must be >= 1")
        if self.window < 1:
            raise ConfigError("window must be >= 1")
        if self.value_penalty < 0:
            raise ConfigError("value_penalty must be >= 0")


@dataclass(frozen=True)
class RealisticConfig:
    """The Section 5 machine (fetch engine and predictors passed separately)."""

    window: int = 40
    issue_width: int = 40
    # Documents the paper's 40-FU machine; validate() pins n_fus >=
    # window, after which the window bound alone governs the timing
    # model, so no execution path reads it.
    n_fus: int = 40  # repro-lint: disable=RPF003
    branch_penalty: int = 3
    value_penalty: int = 1
    memory_dependencies: bool = True

    def validate(self) -> None:
        if min(self.window, self.issue_width, self.n_fus) < 1:
            raise ConfigError("window/issue_width/n_fus must be >= 1")
        if self.branch_penalty < 0 or self.value_penalty < 0:
            raise ConfigError("penalties must be >= 0")
        if self.n_fus < self.window:
            # The paper sizes FUs = window so structural hazards vanish;
            # the analytic core relies on that.
            raise ConfigError(
                "this model requires n_fus >= window (the paper uses 40/40)"
            )
