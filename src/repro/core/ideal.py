"""The Section 3 ideal machine.

Pipeline: Fetch, Decode/Issue, Execute, Commit — one cycle each, unit
execution latency (Table 3.2). The machine is constrained only by

* the artificial fetch/issue rate (``config.fetch_rate``),
* the instruction window (in-order allocate at fetch, in-order commit),
* true-data dependencies — unless the producer's value was correctly
  predicted (and the classifier allowed using it), in which case the
  consumer ignores the dependence.

Control dependencies, name dependencies and structural conflicts do not
exist here, and taken branches per cycle are unlimited.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from dataclasses import dataclass, field

from repro.core.backend import resolve_backend
from repro.core.config import IdealConfig
from repro.core.results import SimulationResult
from repro.core.vp_plan import plan_value_predictions
from repro.trace.trace import Trace
from repro.vpred.base import ValuePredictor


@dataclass
class ScheduleDetail:
    """Per-instruction schedule captured by :func:`simulate_ideal`."""

    fetch: List[int] = field(default_factory=list)
    exec_done: List[int] = field(default_factory=list)


@dataclass
class IdealRunAudit:
    """Post-run payload handed to :data:`INVARIANT_HOOK` (see
    :mod:`repro.verify.checked`)."""

    trace: Trace
    config: IdealConfig
    attempted: Optional[List[bool]]
    correct: Optional[List[bool]]
    exec_done: List[int]
    commit: List[int]
    result: SimulationResult


# Optional post-run hook (installed by repro.verify.checked); keeping it
# a plain module attribute avoids a core -> verify dependency.
INVARIANT_HOOK: Optional[Callable[[IdealRunAudit], None]] = None


def simulate_ideal(
    trace: Trace,
    config: Optional[IdealConfig] = None,
    predictor: Optional[ValuePredictor] = None,
    vp_plan: Optional[Tuple[List[bool], List[bool]]] = None,
    detail: Optional["ScheduleDetail"] = None,
    backend: Optional[str] = None,
) -> SimulationResult:
    """Simulate ``trace`` on the ideal machine.

    ``predictor`` enables value prediction (None = baseline). A
    precomputed ``vp_plan`` may be passed to reuse one predictor pass
    across several fetch rates, since the plan does not depend on
    timing. Passing a :class:`ScheduleDetail` captures the per-
    instruction schedule (used by the usefulness analysis). ``backend``
    overrides the backend selection (see :mod:`repro.core.backend`);
    the columnar backend produces identical results and is skipped
    automatically when the caller needs the per-instruction schedule or
    an invariant hook is installed.
    """
    if config is None:
        config = IdealConfig()
    config.validate()
    if (
        detail is None
        and INVARIANT_HOOK is None
        and resolve_backend(backend) == "columnar"
    ):
        from repro.core.columnar import simulate_ideal_columnar

        result = simulate_ideal_columnar(trace, config, predictor, vp_plan)
        if result is not None:
            return result
    if predictor is not None and vp_plan is None:
        vp_plan = plan_value_predictions(trace, predictor)
    attempted, correct = vp_plan if vp_plan is not None else (None, None)

    records = trace.records
    n = len(records)
    window = config.window
    rate = config.fetch_rate
    penalty = config.value_penalty

    memdeps = config.memory_dependencies

    exec_done = [0] * n
    fetch_of = [0] * n if detail is not None else None
    commit = [0] * n
    last_write: Dict[int, int] = {}
    last_store: Dict[int, int] = {}

    fetch_cycle = 0
    used = 0
    prev_commit = 0
    for i, record in enumerate(records):
        f = fetch_cycle
        if used >= rate:
            f += 1
        if i >= window:
            # Scheduling-window semantics: the slot frees when the
            # occupant completes execution (the limit-study reading of
            # "limited by the instruction window size").
            slot_free = exec_done[i - window]
            if slot_free > f:
                f = slot_free
        if f > fetch_cycle:
            used = 0
        fetch_cycle = f
        used += 1
        if fetch_of is not None:
            fetch_of[i] = f

        # Decode/issue at f+1; earliest execute at f+2.
        start = f + 2
        for src in record.srcs:
            producer = last_write.get(src)
            if producer is None:
                continue
            if attempted is not None and attempted[producer]:
                if correct[producer]:
                    continue            # dependence eliminated
                ready = exec_done[producer] + penalty
            else:
                ready = exec_done[producer]
            if ready > start:
                start = ready
        if memdeps and record.mem_addr is not None and record.is_load:
            # Store→load ordering: the load itself always waits for the
            # store; prediction of the *load's* value is what frees its
            # consumers (handled above, via the load as producer).
            producer = last_store.get(record.mem_addr)
            if producer is not None and exec_done[producer] > start:
                start = exec_done[producer]
        exec_done[i] = start + 1
        prev_commit = max(exec_done[i], prev_commit)
        commit[i] = prev_commit
        if record.dest is not None:
            last_write[record.dest] = i
        if memdeps and record.is_store and record.mem_addr is not None:
            last_store[record.mem_addr] = i

    if detail is not None:
        detail.fetch = fetch_of
        detail.exec_done = exec_done
    cycles = commit[-1] if n else 0
    result = SimulationResult(
        name=f"ideal(rate={rate}{',vp' if predictor or vp_plan else ''})",
        n_instructions=n,
        cycles=cycles,
    )
    hook = INVARIANT_HOOK
    if hook is not None:
        hook(IdealRunAudit(
            trace=trace, config=config, attempted=attempted, correct=correct,
            exec_done=exec_done, commit=commit, result=result,
        ))
    return result


def pipeline_table(
    trace_like: Sequence, fetch_rate: int = 4, window: int = 40
) -> List[Tuple[int, List[int], List[int], List[int], List[int]]]:
    """Cycle-by-cycle pipeline occupancy — the paper's Table 3.2.

    ``trace_like`` is a sequence of DynInstr (a perfect value predictor
    is assumed, as in the table: every dependence is eliminated, so
    instructions execute as soon as issued). Returns rows
    ``(cycle, fetched, decoded, executed, committed)`` with 1-based
    instruction numbers, matching the paper's presentation.

    The ``window`` limit follows the :func:`simulate_ideal` slot-free
    rule: instruction ``i`` cannot fetch before the occupant of its
    window slot (instruction ``i - window``) completes execution, which
    under the perfect predictor is that occupant's fetch cycle + 3; a
    window stall restarts the per-cycle fetch count.
    """
    rows: Dict[int, Tuple[List[int], List[int], List[int], List[int]]] = {}

    def row(cycle: int):
        return rows.setdefault(cycle, ([], [], [], []))

    fetch_of: List[int] = []
    fetch_cycle = 1
    used = 0
    for i, record in enumerate(trace_like):
        if used >= fetch_rate:
            fetch_cycle += 1
            used = 0
        if i >= window:
            slot_free = fetch_of[i - window] + 3
            if slot_free > fetch_cycle:
                fetch_cycle = slot_free
                used = 0
        used += 1
        f = fetch_cycle
        fetch_of.append(f)
        row(f)[0].append(i + 1)
        row(f + 1)[1].append(i + 1)
        row(f + 2)[2].append(i + 1)
        row(f + 3)[3].append(i + 1)

    return [
        (cycle, stages[0], stages[1], stages[2], stages[3])
        for cycle, stages in sorted(rows.items())
    ]
