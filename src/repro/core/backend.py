"""Simulation backend selection.

Two interchangeable implementations exist for the hot paths (fetch
planning, VP planning, dependence resolution / timing, trace stats):

* ``object`` — the original per-instruction reference loops over
  :class:`~repro.trace.record.DynInstr` objects.  Always available,
  always authoritative.
* ``columnar`` — vectorized passes over the struct-of-arrays view
  (:mod:`repro.trace.columnar`), with optional compiled kernels
  (:mod:`repro.core._native`).  Produces byte-identical results and
  silently falls back to the reference implementation whenever a trace,
  predictor or engine configuration is outside its fast paths.

Selection: an explicit ``backend=`` argument wins, then the
``REPRO_BACKEND`` environment variable (``auto`` | ``object`` |
``columnar``); ``auto`` (the default) resolves to ``columnar``.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.errors import ConfigError

#: Concrete backend names (``auto`` resolves to one of these).
BACKENDS = ("object", "columnar")

_ENV_VAR = "REPRO_BACKEND"


def resolve_backend(explicit: Optional[str] = None) -> str:
    """Resolve the backend to use: ``"object"`` or ``"columnar"``.

    ``explicit`` (a ``backend=`` keyword argument) takes precedence over
    the ``REPRO_BACKEND`` environment variable; ``None`` or ``"auto"``
    defers to the next level down.
    """
    choice = explicit
    if choice is None or choice == "auto":
        choice = os.environ.get(_ENV_VAR, "auto")
    choice = choice.strip().lower()
    if choice == "auto":
        return "columnar"
    if choice in BACKENDS:
        return choice
    raise ConfigError(
        f"unknown simulation backend {choice!r}: "
        f"expected 'auto', 'object' or 'columnar'"
    )
