"""Columnar-backend implementations of the two timing cores.

The per-instruction reference loops in :mod:`repro.core.ideal` and
:mod:`repro.core.realistic` spend most of their time on attribute
access and dict probes.  Here the trace-invariant parts (producer
indices per source operand, store→load arcs) come precomputed from the
:class:`~repro.trace.columnar.ColumnarTrace`, the per-run value-
prediction gating collapses into four flat dependence arrays, and the
remaining sequential recurrence runs in a compiled kernel
(:mod:`repro.core._native`) or a tight Python loop over plain lists.

Dependence-array encoding, identical for both cores: for record ``i``
and source slot ``s``, ``d{s}[i]`` is the producer index the record
must wait for (-1 = none, including correctly-predicted producers whose
dependence is eliminated) and ``a{s}[i]`` the value-misprediction
penalty added to that producer's completion; ``dm[i]`` is the producing
store for loads.  This reproduces the reference loops' max() chain
statement for statement, so cycle counts are byte-identical — the
backend parity suite and the bench CLI both assert it.

Entry points return ``None`` when the trace has no columnar view; the
callers in ideal/realistic then run the reference implementation.  All
other fallbacks (no numpy, no compiler, exotic predictor or VP unit)
are internal and still produce exact results.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core._native import native_kernels
from repro.core.results import SimulationResult
from repro.core.vp_plan import plan_value_predictions
from repro.vpred.columnar import vectorized_plan
from repro.vphw.unit import AbstractVPUnit

try:
    import numpy as np
except ImportError:  # pragma: no cover - list path used instead
    np = None  # type: ignore[assignment]


# -- dependence arrays -----------------------------------------------------

def _gate_np(prod, att, cor, penalty):
    """Apply VP gating to one producer column (numpy path)."""
    hasp = prod >= 0
    idx = np.where(hasp, prod, 0)
    p_att = att[idx] & hasp
    p_cor = cor[idx] & p_att
    d = np.where(hasp & ~p_cor, prod, np.int64(-1))
    a = np.where(p_att & ~p_cor, np.int64(penalty), np.int64(0))
    return np.ascontiguousarray(d), np.ascontiguousarray(a)


def _dep_arrays_np(cols, attempted, correct, penalty, memdeps):
    n = cols.n
    p0 = cols.prod0
    p1 = cols.prod1
    if attempted is None:
        zeros = np.zeros(n, dtype=np.int64)
        d0, a0, d1, a1 = p0, zeros, p1, zeros
    else:
        att = np.asarray(attempted, dtype=bool)
        cor = np.asarray(correct, dtype=bool)
        d0, a0 = _gate_np(p0, att, cor, penalty)
        d1, a1 = _gate_np(p1, att, cor, penalty)
    if memdeps:
        dm = cols.memprod
    else:
        dm = np.full(n, -1, dtype=np.int64)
    return d0, a0, d1, a1, dm


def _gate_lists(prod: List[int], att, cor, penalty: int):
    n = len(prod)
    d = [-1] * n
    a = [0] * n
    for i in range(n):
        p = prod[i]
        if p >= 0:
            if att[p]:
                if cor[p]:
                    continue
                d[i] = p
                a[i] = penalty
            else:
                d[i] = p
    return d, a


def _dep_lists(cols, attempted, correct, penalty, memdeps):
    n = cols.n
    p0, p1, pm = cols.prod_lists()
    if attempted is None:
        zeros = [0] * n
        d0, a0, d1, a1 = p0, zeros, p1, zeros
    else:
        if np is not None and isinstance(attempted, np.ndarray):
            attempted = attempted.tolist()
            correct = correct.tolist()
        d0, a0 = _gate_lists(p0, attempted, correct, penalty)
        d1, a1 = _gate_lists(p1, attempted, correct, penalty)
    dm = pm if memdeps else [-1] * n
    return d0, a0, d1, a1, dm


# -- tight-loop fallbacks of the compiled kernels --------------------------

def _ideal_loop(n, window, rate, d0, a0, d1, a1, dm) -> List[int]:
    ed = [0] * n
    fetch_cycle = 0
    used = 0
    for i in range(n):
        f = fetch_cycle
        if used >= rate:
            f += 1
        if i >= window:
            slot_free = ed[i - window]
            if slot_free > f:
                f = slot_free
        if f > fetch_cycle:
            used = 0
        fetch_cycle = f
        used += 1
        start = f + 2
        p = d0[i]
        if p >= 0:
            ready = ed[p] + a0[i]
            if ready > start:
                start = ready
        p = d1[i]
        if p >= 0:
            ready = ed[p] + a1[i]
            if ready > start:
                start = ready
        p = dm[i]
        if p >= 0:
            ready = ed[p]
            if ready > start:
                start = ready
        ed[i] = start + 1
    return ed


def _realistic_loop(
    n, window, branch_penalty,
    blocks: Sequence[Tuple[int, int, int]],
    d0, a0, d1, a1, dm,
) -> List[int]:
    ed = [0] * n
    prev_fetch = -1
    redirect_ready = 0
    for bs, be, bm in blocks:
        f = prev_fetch + 1
        if redirect_ready > f:
            f = redirect_ready
        for i in range(bs, be):
            if i >= window:
                slot_free = ed[i - window]
                if slot_free > f:
                    f = slot_free
            start = f + 2
            p = d0[i]
            if p >= 0:
                ready = ed[p] + a0[i]
                if ready > start:
                    start = ready
            p = d1[i]
            if p >= 0:
                ready = ed[p] + a1[i]
                if ready > start:
                    start = ready
            p = dm[i]
            if p >= 0:
                ready = ed[p]
                if ready > start:
                    start = ready
            ed[i] = start + 1
        prev_fetch = f
        if bm >= 0:
            resume = ed[bm] + branch_penalty
            if resume > redirect_ready:
                redirect_ready = resume
    return ed


# -- the two cores ---------------------------------------------------------

def simulate_ideal_columnar(trace, config, predictor, vp_plan) -> Optional[SimulationResult]:
    """Columnar :func:`~repro.core.ideal.simulate_ideal`, or None."""
    cols = trace.columns()
    if cols is None:
        return None
    if predictor is not None and vp_plan is None:
        vp_plan = plan_value_predictions(trace, predictor)
    attempted, correct = vp_plan if vp_plan is not None else (None, None)
    n = cols.n
    rate = config.fetch_rate
    if n == 0:
        cycles = 0
    else:
        kernels = native_kernels() if cols.vec else None
        if kernels is not None:
            deps = _dep_arrays_np(
                cols, attempted, correct,
                config.value_penalty, config.memory_dependencies,
            )
            ed = np.empty(n, dtype=np.int64)
            cycles = kernels.ideal(n, config.window, rate, *deps, ed)
        else:
            deps = _dep_lists(
                cols, attempted, correct,
                config.value_penalty, config.memory_dependencies,
            )
            cycles = max(_ideal_loop(n, config.window, rate, *deps))
    return SimulationResult(
        name=f"ideal(rate={rate}{',vp' if predictor or vp_plan else ''})",
        n_instructions=n,
        cycles=cycles,
    )


def _run_realistic(cols, config, plan, attempted, correct) -> int:
    n = cols.n
    if n == 0:
        return 0
    blocks = plan.blocks
    kernels = native_kernels() if cols.vec else None
    if kernels is not None:
        deps = _dep_arrays_np(
            cols, attempted, correct,
            config.value_penalty, config.memory_dependencies,
        )
        nb = len(blocks)
        bstart = np.fromiter((b.start for b in blocks), np.int64, nb)
        bend = np.fromiter((b.end for b in blocks), np.int64, nb)
        bmis = np.fromiter(
            (-1 if b.mispredict_seq is None else b.mispredict_seq
             for b in blocks),
            np.int64, nb,
        )
        ed = np.empty(n, dtype=np.int64)
        return kernels.realistic(
            nb, config.window, config.branch_penalty,
            bstart, bend, bmis, *deps, ed,
        )
    deps = _dep_lists(
        cols, attempted, correct,
        config.value_penalty, config.memory_dependencies,
    )
    block_tuples = [
        (b.start, b.end, -1 if b.mispredict_seq is None else b.mispredict_seq)
        for b in blocks
    ]
    return max(_realistic_loop(
        n, config.window, config.branch_penalty, block_tuples, *deps,
    ))


def simulate_realistic_columnar(
    trace, fetch_engine, bpred, vp_unit, config, plan,
) -> Optional[SimulationResult]:
    """Columnar :func:`~repro.core.realistic.simulate_realistic`, or None.

    Must not mutate anything (predictor, bpred, VP unit) before deciding
    to run: the only ``None`` return is the missing-columnar-view check,
    after which every internal fallback still completes the simulation.
    """
    from repro.core.realistic import finish_realistic_result

    cols = trace.columns()
    if cols is None:
        return None
    records = trace.records
    n = len(records)
    plan_supplied = plan is not None
    if plan is None:
        plan = fetch_engine.plan(trace, bpred)
    plan.validate(n)

    attempted = correct = None
    if vp_unit is not None:
        fast = None
        if type(vp_unit) is AbstractVPUnit:
            fast = vectorized_plan(cols, vp_unit.predictor)
        if fast is not None:
            attempted, correct = fast
            nprod = int(cols.writes.sum()) if cols.vec else sum(cols.writes)
            stats = vp_unit.stats
            stats.candidates += nprod
            stats.requests += nprod
            stats.predictions += int(attempted.sum())
            stats.correct += int(correct.sum())
        else:
            # Reference block pass: exact for any VP unit (banked,
            # hinted, finite-table) at reference speed.
            att = [False] * n
            cor = [False] * n
            for block in plan:
                block_records = records[block.start:block.end]
                predictions = vp_unit.predict_block(block_records)
                for seq, value in predictions.items():
                    att[seq] = True
                    cor[seq] = value == records[seq].value
                vp_unit.train_block(block_records)
            attempted, correct = att, cor

    cycles = _run_realistic(cols, config, plan, attempted, correct)
    return finish_realistic_result(
        trace, plan, bpred, vp_unit, plan_supplied, n, cycles,
    )
