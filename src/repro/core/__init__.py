"""Timing models: the paper's two machines.

* :func:`simulate_ideal` — the Section 3 limit-study machine: only
  true-data dependencies, a finite instruction window and an artificial
  fetch/issue rate constrain execution.
* :func:`simulate_realistic` — the Section 5 machine: 4-stage pipeline,
  40-entry window, 40 execution units, register renaming, pluggable
  fetch engine and branch predictor, 3-cycle branch misprediction
  penalty and 1-cycle value misprediction penalty with selective
  reissue.
"""

from repro.core.backend import BACKENDS, resolve_backend
from repro.core.config import IdealConfig, RealisticConfig
from repro.core.results import SimulationResult, speedup
from repro.core.vp_plan import plan_value_predictions
from repro.core.ideal import simulate_ideal, pipeline_table
from repro.core.realistic import plan_branch_accuracy, simulate_realistic

__all__ = [
    "BACKENDS",
    "resolve_backend",
    "IdealConfig",
    "RealisticConfig",
    "SimulationResult",
    "speedup",
    "plan_value_predictions",
    "simulate_ideal",
    "pipeline_table",
    "plan_branch_accuracy",
    "simulate_realistic",
]
