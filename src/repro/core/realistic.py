"""The Section 5 realistic machine.

Trace-driven, analytic (one pass after planning): the fetch engine and
branch predictor produce the per-cycle fetch blocks, the VP unit
produces per-slot predictions block by block, and the timing pass then
resolves dependence, window, misprediction-stall and reissue timing.

Model summary (per the paper's Section 5 description):

* 4 stages — Fetch, Decode/Issue, Execute, Commit — 1 cycle each.
* Window of 40 with in-order allocation and commit; 40 execution units
  and decode/issue width 40, so with ≤40 in flight there are never
  structural conflicts; register renaming removes name hazards.
* One fetch block per cycle (blocks are bounded by the engine's width
  and taken-branch caps). A window-full condition simply delays the
  remainder of the block to later cycles.
* A mispredicted control transfer stalls fetch until the branch
  executes, plus the 3-cycle branch misprediction penalty.
* A consumer of a correctly predicted value ignores that dependence; a
  consumer that used a wrong prediction is selectively reissued and
  executes ``value_penalty`` (1) cycles after the producer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.bpred.base import BranchPredictor
from repro.core.backend import resolve_backend
from repro.core.config import RealisticConfig
from repro.core.results import SimulationResult
from repro.fetch.base import FetchEngine, FetchPlan
from repro.trace.trace import Trace


@dataclass
class RealisticRunAudit:
    """Everything a post-run invariant check needs about one run.

    Handed to :data:`INVARIANT_HOOK` (when installed) after every
    simulation; consumed by :mod:`repro.verify`.
    """

    trace: Trace
    plan: FetchPlan
    config: RealisticConfig
    attempted: List[bool]
    correct: List[bool]
    exec_done: List[int]
    commit: List[int]
    vp_unit: object
    result: SimulationResult


# Optional post-run hook (installed by repro.verify.checked); keeping it
# a plain module attribute avoids a core -> verify dependency.
INVARIANT_HOOK: Optional[Callable[[RealisticRunAudit], None]] = None


def plan_branch_accuracy(
    trace: Trace, plan: FetchPlan, bpred: BranchPredictor
) -> float:
    """Branch-prediction accuracy implied by a fetch plan.

    Every mispredicted control transfer ends exactly one fetch block
    (``mispredict_seq``), so the plan itself records the mispredictions
    of the pass that produced it.  The denominator comes from the plan
    as well (:attr:`FetchPlan.lookups`, recorded by every engine as the
    number of predictions the pass actually made); only for plans built
    by hand without that field is ``bpred`` consulted — and then solely
    for its *policy* (which instructions look up the BTB), never
    predicted or trained, so calling this does not perturb statistics.

    The result is clamped to [0, 1]: a hand-made plan may mark
    mispredictions on blocks whose ending instruction is outside the
    policy's lookup set, and the ratio of two independently sourced
    counts must still read as an accuracy.
    """
    lookups = plan.lookups
    if lookups is None:
        lookups = sum(
            1 for record in trace if bpred.needs_prediction(record)
        )
    mispredicts = sum(
        1 for block in plan if block.mispredict_seq is not None
    )
    if lookups <= 0:
        return 1.0 if mispredicts == 0 else 0.0
    return min(1.0, max(0.0, 1.0 - mispredicts / lookups))


def finish_realistic_result(
    trace: Trace,
    plan: FetchPlan,
    bpred: BranchPredictor,
    vp_unit,
    plan_supplied: bool,
    n: int,
    cycles: int,
) -> SimulationResult:
    """Assemble the :class:`SimulationResult` both backends return.

    With a caller-supplied plan the predictor was never consulted in
    this run — its stats describe whichever pass built the plan (or
    nothing at all for a fresh instance), and reporting them here
    double-counts the planning pass across a VP/no-VP speedup pair.
    Derive the accuracy from the plan itself instead.
    """
    if plan_supplied:
        branch_accuracy = plan_branch_accuracy(trace, plan, bpred)
    else:
        branch_accuracy = bpred.stats.accuracy
    extra = {
        "fetch_blocks": float(len(plan)),
        "mean_block_size": plan.mean_block_size(),
        "branch_accuracy": branch_accuracy,
    }
    if vp_unit is not None:
        extra["vp_predictions"] = float(vp_unit.stats.predictions)
        extra["vp_accuracy"] = vp_unit.stats.accuracy
    return SimulationResult(
        name=f"realistic({'vp' if vp_unit is not None else 'base'})",
        n_instructions=n,
        cycles=cycles,
        extra=extra,
    )


def simulate_realistic(
    trace: Trace,
    fetch_engine: FetchEngine,
    bpred: BranchPredictor,
    vp_unit=None,
    config: Optional[RealisticConfig] = None,
    plan: Optional[FetchPlan] = None,
    backend: Optional[str] = None,
) -> SimulationResult:
    """Simulate ``trace`` on the realistic machine.

    ``vp_unit`` is an object with ``predict_block``/``train_block``
    (:class:`~repro.vphw.AbstractVPUnit` or
    :class:`~repro.vphw.BankedVPUnit`); None disables value prediction.
    A precomputed fetch ``plan`` may be supplied to share one
    plan/predictor pass between the VP and no-VP runs of a speedup pair.
    ``backend`` overrides the backend selection (see
    :mod:`repro.core.backend`); the columnar backend produces identical
    results and is skipped automatically when invariant hooks need the
    per-instruction schedule.
    """
    if config is None:
        config = RealisticConfig()
    config.validate()
    if INVARIANT_HOOK is None and resolve_backend(backend) == "columnar":
        from repro.core.columnar import simulate_realistic_columnar

        result = simulate_realistic_columnar(
            trace, fetch_engine, bpred, vp_unit, config, plan,
        )
        if result is not None:
            return result
    records = trace.records
    n = len(records)
    plan_supplied = plan is not None
    if plan is None:
        plan = fetch_engine.plan(trace, bpred)
    plan.validate(n)

    # -- value-prediction planning, block by block ---------------------
    attempted = [False] * n
    correct = [False] * n
    if vp_unit is not None:
        for block in plan:
            block_records = records[block.start:block.end]
            predictions = vp_unit.predict_block(block_records)
            for seq, value in predictions.items():
                attempted[seq] = True
                correct[seq] = value == records[seq].value
            vp_unit.train_block(block_records)

    # -- timing pass -------------------------------------------------------
    window = config.window
    value_penalty = config.value_penalty
    branch_penalty = config.branch_penalty

    memdeps = config.memory_dependencies
    exec_done = [0] * n
    commit = [0] * n
    last_write: Dict[int, int] = {}
    last_store: Dict[int, int] = {}
    prev_commit = 0
    prev_fetch = -1
    redirect_ready = 0

    for block in plan:
        f = prev_fetch + 1
        if redirect_ready > f:
            f = redirect_ready
        for i in range(block.start, block.end):
            record = records[i]
            if i >= window:
                # Scheduling-window slot frees when its occupant
                # completes execution (see core.ideal for rationale).
                slot_free = exec_done[i - window]
                if slot_free > f:
                    f = slot_free          # window stall splits the block
            start = f + 2                  # decode at f+1, execute at f+2
            for src in record.srcs:
                producer = last_write.get(src)
                if producer is None:
                    continue
                if attempted[producer]:
                    if correct[producer]:
                        continue
                    ready = exec_done[producer] + value_penalty
                else:
                    ready = exec_done[producer]
                if ready > start:
                    start = ready
            if memdeps and record.mem_addr is not None and record.is_load:
                producer = last_store.get(record.mem_addr)
                if producer is not None and exec_done[producer] > start:
                    start = exec_done[producer]
            exec_done[i] = start + 1
            prev_commit = max(exec_done[i], prev_commit)
            commit[i] = prev_commit
            if record.dest is not None:
                last_write[record.dest] = i
            if memdeps and record.is_store and record.mem_addr is not None:
                last_store[record.mem_addr] = i
        prev_fetch = f
        if block.mispredict_seq is not None:
            resume = exec_done[block.mispredict_seq] + branch_penalty
            if resume > redirect_ready:
                redirect_ready = resume

    cycles = commit[-1] if n else 0
    result = finish_realistic_result(
        trace, plan, bpred, vp_unit, plan_supplied, n, cycles,
    )
    hook = INVARIANT_HOOK
    if hook is not None:
        hook(RealisticRunAudit(
            trace=trace, plan=plan, config=config,
            attempted=attempted, correct=correct,
            exec_done=exec_done, commit=commit,
            vp_unit=vp_unit, result=result,
        ))
    return result
