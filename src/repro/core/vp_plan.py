"""Pre-pass that decides, per dynamic instruction, how value prediction
went — the timing cores then consume plain boolean arrays.

Predictor state evolves in trace (fetch) order, which matches the
paper's speculative-update-at-lookup discipline on a correct-path
trace, so the plan is timing-independent.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.backend import resolve_backend
from repro.trace.trace import Trace
from repro.vpred.base import ValuePredictor


def plan_value_predictions(
    trace: Trace, predictor: ValuePredictor, backend: Optional[str] = None
) -> Tuple[List[bool], List[bool]]:
    """Run ``predictor`` along the trace.

    Returns ``(attempted, correct)`` per sequence number: ``attempted``
    means a prediction was actually offered (table hit and classifier
    confident); ``correct`` means it matched the outcome. Non-producers
    are False/False.

    Under the columnar backend (see :mod:`repro.core.backend`) the pass
    is computed in closed form per PC group for the supported predictor
    types, leaving identical plans, statistics and predictor state; any
    unsupported combination silently runs the reference loop below.
    """
    if resolve_backend(backend) == "columnar":
        cols = trace.columns()
        if cols is not None:
            from repro.vpred.columnar import vectorized_plan

            fast = vectorized_plan(cols, predictor)
            if fast is not None:
                attempted_arr, correct_arr = fast
                return attempted_arr.tolist(), correct_arr.tolist()
    n = len(trace)
    attempted = [False] * n
    correct = [False] * n
    for record in trace:
        if record.dest is None:
            continue
        predicted = predictor.lookup_and_update(record.pc, record.value)
        if predicted is not None:
            attempted[record.seq] = True
            correct[record.seq] = predicted == record.value
    return attempted, correct
