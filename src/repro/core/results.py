"""Simulation results and speedup arithmetic."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.errors import SimulationError


@dataclass
class SimulationResult:
    """Outcome of one timing-simulation run.

    ``cycles`` is the commit cycle of the last instruction; ``extra``
    carries model-specific statistics (branch accuracy, VP unit
    counters, fetch-plan shape...) for reporting.
    """

    name: str
    n_instructions: int
    cycles: int
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        if self.n_instructions == 0:
            # An empty trace legitimately commits in 0 cycles; IPC (and
            # any speedup over it) is undefined, not a simulator bug.
            raise SimulationError(
                f"{self.name}: IPC is undefined for an empty run "
                "(0 instructions)"
            )
        if self.cycles <= 0:
            raise SimulationError(
                f"{self.name}: non-positive cycle count {self.cycles} "
                f"for {self.n_instructions} instructions"
            )
        return self.n_instructions / self.cycles


def speedup(with_vp: SimulationResult, without_vp: SimulationResult) -> float:
    """The paper's speedup metric: IPC gain of value prediction.

    Both runs must be the same workload on the same machine apart from
    value prediction; the result is e.g. 0.33 for "33% speedup".
    """
    if with_vp.n_instructions != without_vp.n_instructions:
        raise SimulationError(
            "speedup compares runs of the same trace: "
            f"{with_vp.n_instructions} vs {without_vp.n_instructions} instructions"
        )
    return with_vp.ipc / without_vp.ipc - 1.0
