"""Optional compiled kernels for the columnar backend.

The columnar timing recurrences (ideal/realistic exec-done chains, the
saturating-classifier scan, producer derivation) are inherently
sequential, so they cannot be vectorized with numpy; the fallback is a
tight Python loop.  When a C compiler is available the loops are
compiled once into a small shared library and driven through ``ctypes``
— the source below is self-contained C99 with no dependencies, keyed by
its own SHA-256 so rebuilds only happen when the kernels change.

Everything here is best-effort: no compiler, a failed compile, a failed
``dlopen`` or ``REPRO_NATIVE=0`` all yield ``None`` from
:func:`native_kernels` and callers use the Python loops.  The kernels
compute the same integer recurrences statement-for-statement, so results
are identical either way (the backend parity suite pins this).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from typing import Optional

_ENV_TOGGLE = "REPRO_NATIVE"
_ENV_DIR = "REPRO_NATIVE_DIR"
_DISABLED = ("0", "off", "false", "no")

_SOURCE = r"""
#include <stdlib.h>

/* Last register writer per source operand, -1 when none.  Registers are
   int16 with -1 = absent; `nregs` bounds the scratch table.  Returns 0
   only on allocation failure. */
int repro_producers(long long n, long long nregs,
                    const short *dest, const short *src0, const short *src1,
                    long long *prod0, long long *prod1)
{
    long long *last = (long long *)malloc((size_t)nregs * sizeof(long long));
    long long i, r;
    if (!last) return 0;
    for (r = 0; r < nregs; r++) last[r] = -1;
    for (i = 0; i < n; i++) {
        short s = src0[i];
        prod0[i] = (s >= 0) ? last[s] : -1;
        s = src1[i];
        prod1[i] = (s >= 0) ? last[s] : -1;
        s = dest[i];
        if (s >= 0) last[s] = i;
    }
    free(last);
    return 1;
}

/* The core.ideal timing recurrence.  d0/d1/dm are producer indices
   (-1 = no dependence), a0/a1 the value-misprediction penalties to add
   to the producer's completion.  Fills ed (exec-done per record) and
   returns its maximum (= total cycles). */
long long repro_ideal(long long n, long long window, long long rate,
                      const long long *d0, const long long *a0,
                      const long long *d1, const long long *a1,
                      const long long *dm, long long *ed)
{
    long long fetch_cycle = 0, used = 0, maxed = 0, i;
    for (i = 0; i < n; i++) {
        long long f = fetch_cycle, start, p, ready;
        if (used >= rate) f += 1;
        if (i >= window) {
            long long slot_free = ed[i - window];
            if (slot_free > f) f = slot_free;
        }
        if (f > fetch_cycle) used = 0;
        fetch_cycle = f;
        used += 1;
        start = f + 2;
        p = d0[i];
        if (p >= 0) { ready = ed[p] + a0[i]; if (ready > start) start = ready; }
        p = d1[i];
        if (p >= 0) { ready = ed[p] + a1[i]; if (ready > start) start = ready; }
        p = dm[i];
        if (p >= 0) { ready = ed[p]; if (ready > start) start = ready; }
        ed[i] = start + 1;
        if (ed[i] > maxed) maxed = ed[i];
    }
    return maxed;
}

/* The core.realistic timing pass over precomputed fetch blocks
   (bstart/bend/bmis, bmis = -1 when the block ends cleanly). */
long long repro_realistic(long long nblocks, long long window,
                          long long branch_penalty,
                          const long long *bstart, const long long *bend,
                          const long long *bmis,
                          const long long *d0, const long long *a0,
                          const long long *d1, const long long *a1,
                          const long long *dm, long long *ed)
{
    long long prev_fetch = -1, redirect_ready = 0, maxed = 0, b, i;
    for (b = 0; b < nblocks; b++) {
        long long f = prev_fetch + 1;
        if (redirect_ready > f) f = redirect_ready;
        for (i = bstart[b]; i < bend[b]; i++) {
            long long start, p, ready;
            if (i >= window) {
                long long slot_free = ed[i - window];
                if (slot_free > f) f = slot_free;
            }
            start = f + 2;
            p = d0[i];
            if (p >= 0) { ready = ed[p] + a0[i]; if (ready > start) start = ready; }
            p = d1[i];
            if (p >= 0) { ready = ed[p] + a1[i]; if (ready > start) start = ready; }
            p = dm[i];
            if (p >= 0) { ready = ed[p]; if (ready > start) start = ready; }
            ed[i] = start + 1;
            if (ed[i] > maxed) maxed = ed[i];
        }
        prev_fetch = f;
        if (bmis[b] >= 0) {
            long long resume = ed[bmis[b]] + branch_penalty;
            if (resume > redirect_ready) redirect_ready = resume;
        }
    }
    return maxed;
}

/* Saturating-classifier scan over producers in trace order.  gid maps
   each producer to its PC group; counters (len = n groups) must be
   pre-filled with the initial counter value.  allowed[k] records
   whether the counter permitted use *before* this occurrence trained
   it; training happens only when the raw predictor offered a value
   (has_raw). */
void repro_satcounter(long long nprod, const long long *gid,
                      const unsigned char *raw_ok,
                      const unsigned char *has_raw,
                      long long max_value, long long threshold,
                      long long *counters, unsigned char *allowed)
{
    long long k;
    for (k = 0; k < nprod; k++) {
        long long g = gid[k];
        long long c = counters[g];
        allowed[k] = (unsigned char)(c >= threshold);
        if (has_raw[k]) {
            if (raw_ok[k]) { if (c < max_value) counters[g] = c + 1; }
            else           { if (c > 0)         counters[g] = c - 1; }
        }
    }
}
"""

_I64P = ctypes.POINTER(ctypes.c_longlong)
_I16P = ctypes.POINTER(ctypes.c_short)
_U8P = ctypes.POINTER(ctypes.c_ubyte)
_I64 = ctypes.c_longlong


def _ptr(arr, ctype):
    return arr.ctypes.data_as(ctype)


class NativeKernels:
    """ctypes facade over the compiled kernel library."""

    def __init__(self, lib: ctypes.CDLL):
        self._lib = lib
        lib.repro_producers.restype = ctypes.c_int
        lib.repro_producers.argtypes = [
            _I64, _I64, _I16P, _I16P, _I16P, _I64P, _I64P,
        ]
        lib.repro_ideal.restype = _I64
        lib.repro_ideal.argtypes = [
            _I64, _I64, _I64, _I64P, _I64P, _I64P, _I64P, _I64P, _I64P,
        ]
        lib.repro_realistic.restype = _I64
        lib.repro_realistic.argtypes = [
            _I64, _I64, _I64,
            _I64P, _I64P, _I64P,
            _I64P, _I64P, _I64P, _I64P, _I64P, _I64P,
        ]
        lib.repro_satcounter.restype = None
        lib.repro_satcounter.argtypes = [
            _I64, _I64P, _U8P, _U8P, _I64, _I64, _I64P, _U8P,
        ]

    def producers(self, n, nregs, dest, src0, src1, prod0, prod1) -> bool:
        return bool(self._lib.repro_producers(
            n, nregs, _ptr(dest, _I16P), _ptr(src0, _I16P),
            _ptr(src1, _I16P), _ptr(prod0, _I64P), _ptr(prod1, _I64P),
        ))

    def ideal(self, n, window, rate, d0, a0, d1, a1, dm, ed) -> int:
        return int(self._lib.repro_ideal(
            n, window, rate,
            _ptr(d0, _I64P), _ptr(a0, _I64P), _ptr(d1, _I64P),
            _ptr(a1, _I64P), _ptr(dm, _I64P), _ptr(ed, _I64P),
        ))

    def realistic(self, nblocks, window, branch_penalty,
                  bstart, bend, bmis, d0, a0, d1, a1, dm, ed) -> int:
        return int(self._lib.repro_realistic(
            nblocks, window, branch_penalty,
            _ptr(bstart, _I64P), _ptr(bend, _I64P), _ptr(bmis, _I64P),
            _ptr(d0, _I64P), _ptr(a0, _I64P), _ptr(d1, _I64P),
            _ptr(a1, _I64P), _ptr(dm, _I64P), _ptr(ed, _I64P),
        ))

    def satcounter(self, nprod, gid, raw_ok, has_raw,
                   max_value, threshold, counters, allowed) -> None:
        self._lib.repro_satcounter(
            nprod, _ptr(gid, _I64P), _ptr(raw_ok, _U8P),
            _ptr(has_raw, _U8P), max_value, threshold,
            _ptr(counters, _I64P), _ptr(allowed, _U8P),
        )


def _cache_dir() -> str:
    configured = os.environ.get(_ENV_DIR)
    if configured:
        return configured
    return os.path.join(
        os.path.expanduser("~"), ".cache", "repro-native"
    )


def _compiler() -> Optional[str]:
    for candidate in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if candidate and shutil.which(candidate):
            return candidate
    return None


def _build() -> Optional[NativeKernels]:
    cc = _compiler()
    if cc is None:
        return None
    digest = hashlib.sha256(_SOURCE.encode()).hexdigest()[:16]
    directory = _cache_dir()
    lib_path = os.path.join(directory, f"repro_kernels_{digest}.so")
    try:
        if not os.path.exists(lib_path):
            os.makedirs(directory, exist_ok=True)
            with tempfile.TemporaryDirectory(dir=directory) as tmp:
                src = os.path.join(tmp, "kernels.c")
                out = os.path.join(tmp, "kernels.so")
                with open(src, "w") as fh:
                    fh.write(_SOURCE)
                proc = subprocess.run(
                    [cc, "-O2", "-shared", "-fPIC", "-o", out, src],
                    capture_output=True,
                    timeout=120,
                )
                if proc.returncode != 0:
                    return None
                # Atomic publish: concurrent builders race benignly.
                os.replace(out, lib_path)
        return NativeKernels(ctypes.CDLL(lib_path))
    except (OSError, subprocess.SubprocessError):
        return None


# Per-process memo of the (attempted) build.  Worker processes each
# compile-or-load independently; the kernels are pure functions of their
# arguments, so per-process copies cannot diverge observably.
_MEMO: dict = {}


def native_kernels() -> Optional[NativeKernels]:
    """The compiled kernels, or None (disabled / unavailable)."""
    if os.environ.get(_ENV_TOGGLE, "1").strip().lower() in _DISABLED:
        return None
    if "lib" not in _MEMO:
        _MEMO["lib"] = _build()  # repro-lint: disable=RPD005
    return _MEMO["lib"]
