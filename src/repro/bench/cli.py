"""``repro-bench`` — time the simulation backends against each other.

Usage::

    repro-bench [--profile full|short] [--length N] [--seed N]
                [--workload NAME ...] [--output BENCH.json]

Runs the benchmark harness (:mod:`repro.bench`), prints a short table,
and writes the JSON report.  Exit status 1 when the backends diverge on
any cell — the benchmark doubles as a differential test — so CI can run
the short profile as a gate.
"""

from __future__ import annotations

import json
import sys
from typing import List, Optional

from repro.bench import PROFILES, run_bench
from repro.cliutil import CleanArgumentParser, nonnegative_int, positive_int
from repro.workloads import WORKLOAD_NAMES


def _build_parser() -> CleanArgumentParser:
    parser = CleanArgumentParser(
        prog="repro-bench",
        description="benchmark the object vs columnar simulation backends",
    )
    parser.add_argument(
        "--profile", choices=sorted(PROFILES), default="full",
        help="workload sizing: 'full' (200k instructions, the committed "
        "BENCH artifact) or 'short' (CI-sized)",
    )
    parser.add_argument(
        "--length", type=positive_int, default=None,
        help="override the profile's trace length",
    )
    parser.add_argument(
        "--seed", type=nonnegative_int, default=0,
        help="workload generation seed (default 0)",
    )
    parser.add_argument(
        "--workload", action="append", choices=list(WORKLOAD_NAMES),
        default=None, metavar="NAME",
        help="restrict to one workload (repeatable; default: all eight)",
    )
    parser.add_argument(
        "--output", default=None, metavar="PATH",
        help="write the JSON report here (default: BENCH_8.json; "
        "'-' for stdout only)",
    )
    return parser


def _format_report(report: dict) -> str:
    lines = [
        f"repro-bench profile={report['profile']} "
        f"length={report['trace_length']} "
        f"native_kernels={report['native_kernels']}",
    ]
    for backend, payload in report["backends"].items():
        per_exp = " ".join(
            f"{name}={seconds:.2f}s"
            for name, seconds in payload["experiment_seconds"].items()
        )
        lines.append(
            f"  {backend:<9} {per_exp} total={payload['total_seconds']:.2f}s"
        )
    gains = " ".join(
        f"{name}={value:.2f}x"
        for name, value in report["speedup_vs_object"].items()
    )
    lines.append(f"  speedup   {gains}")
    lines.append(f"  parity    {report['parity']}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    report = run_bench(
        profile=args.profile,
        trace_length=args.length,
        seed=args.seed,
        workloads=args.workload,
    )
    if args.output == "-":
        sys.stdout.write(json.dumps(report, sort_keys=True, indent=2) + "\n")
    else:
        path = args.output or "BENCH_8.json"
        # A committed artifact may also carry a "serve" summary written
        # by `repro-serve bench --record`; rewriting the backend
        # timings must not drop it.
        try:
            with open(path, "r", encoding="utf-8") as handle:
                existing = json.load(handle)
            if isinstance(existing, dict) and "serve" in existing:
                report = {**report, "serve": existing["serve"]}
        except (OSError, ValueError):
            pass
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(report, sort_keys=True, indent=2) + "\n")
        print(f"wrote {path}")
    print(_format_report(report))
    if report["parity"] != "identical":
        for problem in report["divergences"]:
            print(f"PARITY: {problem}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the entry point
    raise SystemExit(main())
