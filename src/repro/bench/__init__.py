"""Backend benchmark harness (the ``repro-bench`` tool).

Runs the hot experiment shapes — the Figure 3.1 ideal-machine sweep and
the Figure 5.1 realistic-machine sweep — once per simulation backend
(object reference loops vs the columnar struct-of-arrays passes, see
:mod:`repro.core.backend`) over the same workload traces, and reports
per-experiment wall-clock seconds plus the columnar speedup.

Two properties the harness enforces rather than assumes:

* **Parity** — every cell records its raw cycle counts and result
  extras; the two backends must agree cell-for-cell or the run fails
  (exit status 1 from the CLI).  The benchmark is therefore also the
  coarsest-grained differential test, on real 200k-instruction traces
  rather than the test suite's small ones.
* **Honest columnar timing** — each backend gets a *fresh*
  :class:`~repro.trace.trace.Trace` wrapper around the shared records,
  so the columnar numbers include building the struct-of-arrays view
  and deriving producer columns (they are lazy, and first touched
  inside the timed region).  Trace *generation* (funcsim) is shared and
  untimed: it is identical work for both backends.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.bpred import PerfectBranchPredictor
from repro.core import (
    IdealConfig,
    RealisticConfig,
    plan_value_predictions,
    simulate_ideal,
    simulate_realistic,
)
from repro.core._native import native_kernels
from repro.experiments.common import get_trace
from repro.fetch import SequentialFetchEngine
from repro.trace.trace import Trace
from repro.vphw import AbstractVPUnit
from repro.vpred import make_predictor
from repro.workloads import WORKLOAD_NAMES

SCHEMA = "repro-bench/1"

#: (name, trace length, ideal fetch rates, realistic taken limits)
PROFILES: Dict[str, dict] = {
    "full": {
        "trace_length": 200_000,
        "rates": (4, 8, 16, 32, 40),
        "taken_limits": (1, 4, None),
    },
    "short": {
        "trace_length": 8_000,
        "rates": (4, 16, 40),
        "taken_limits": (1, None),
    },
}


def _bench_fig3_1(
    trace: Trace, rates: Sequence[int], backend: str
) -> List[dict]:
    """The Figure 3.1 cell shape: per rate, a fresh VP plan and a
    base/VP simulation pair on the ideal machine."""
    cells = []
    for rate in rates:
        vp_plan = plan_value_predictions(
            trace, make_predictor(), backend=backend
        )
        base = simulate_ideal(
            trace, IdealConfig(fetch_rate=rate), backend=backend
        )
        with_vp = simulate_ideal(
            trace, IdealConfig(fetch_rate=rate), vp_plan=vp_plan,
            backend=backend,
        )
        cells.append({
            "rate": rate,
            "base_cycles": base.cycles,
            "vp_cycles": with_vp.cycles,
            "attempted": sum(vp_plan[0]),
            "correct": sum(vp_plan[1]),
        })
    return cells


def _bench_fig5_1(
    trace: Trace, taken_limits: Sequence[Optional[int]], backend: str
) -> List[dict]:
    """The Figure 5.1 cell shape: per taken-branch limit, one fetch plan
    shared by a base/VP simulation pair on the realistic machine."""
    cells = []
    for limit in taken_limits:
        config = RealisticConfig()
        engine = SequentialFetchEngine(
            width=config.issue_width, max_taken=limit
        )
        bpred = PerfectBranchPredictor()
        plan = engine.plan(trace, bpred, backend=backend)
        base = simulate_realistic(
            trace, engine, bpred, vp_unit=None, config=config, plan=plan,
            backend=backend,
        )
        with_vp = simulate_realistic(
            trace, engine, bpred, vp_unit=AbstractVPUnit(make_predictor()),
            config=config, plan=plan, backend=backend,
        )
        cells.append({
            "taken_limit": limit,
            "base_cycles": base.cycles,
            "vp_cycles": with_vp.cycles,
            "base_extra": base.extra,
            "vp_extra": with_vp.extra,
        })
    return cells


def _run_backend(
    backend: str,
    records_by_workload: Dict[str, Tuple[list, str]],
    rates: Sequence[int],
    taken_limits: Sequence[Optional[int]],
) -> Tuple[Dict[str, float], Dict[str, Dict[str, list]]]:
    """All experiments under one backend: (seconds per experiment,
    cells per experiment per workload)."""
    seconds: Dict[str, float] = {}
    cells: Dict[str, Dict[str, list]] = {"fig3.1": {}, "fig5.1": {}}
    # Fresh Trace wrappers: the columnar view is built lazily inside the
    # timed sections, so its cost lands in the columnar numbers.
    traces = {
        name: Trace(records, name=tag)
        for name, (records, tag) in records_by_workload.items()
    }
    start = time.perf_counter()
    for name, trace in traces.items():
        cells["fig3.1"][name] = _bench_fig3_1(trace, rates, backend)
    seconds["fig3.1"] = time.perf_counter() - start
    start = time.perf_counter()
    for name, trace in traces.items():
        cells["fig5.1"][name] = _bench_fig5_1(trace, taken_limits, backend)
    seconds["fig5.1"] = time.perf_counter() - start
    return seconds, cells


def compare_cells(
    object_cells: Dict[str, Dict[str, list]],
    columnar_cells: Dict[str, Dict[str, list]],
) -> List[str]:
    """Cell-level divergences between the two backends (empty = parity)."""
    problems: List[str] = []
    for experiment, per_workload in object_cells.items():
        for workload, expected in per_workload.items():
            actual = columnar_cells.get(experiment, {}).get(workload)
            if actual == expected:
                continue
            problems.append(
                f"{experiment}/{workload}: object != columnar\n"
                f"  object:   {expected}\n"
                f"  columnar: {actual}"
            )
    return problems


def run_bench(
    profile: str = "full",
    trace_length: Optional[int] = None,
    seed: int = 0,
    workloads: Optional[Sequence[str]] = None,
) -> Dict[str, Any]:
    """Benchmark both backends and return the BENCH report payload."""
    settings = PROFILES[profile]
    length = trace_length or settings["trace_length"]
    rates = settings["rates"]
    taken_limits = settings["taken_limits"]
    names = list(workloads) if workloads else list(WORKLOAD_NAMES)

    # Generate (or load from the disk cache) once; both backends then
    # wrap the same record lists.
    records_by_workload = {
        name: (get_trace(name, length, seed).records, name)
        for name in names
    }

    backends: Dict[str, Any] = {}
    all_cells: Dict[str, Dict[str, Dict[str, list]]] = {}
    for backend in ("object", "columnar"):
        seconds, cells = _run_backend(
            backend, records_by_workload, rates, taken_limits
        )
        backends[backend] = {
            "experiment_seconds": {
                k: round(v, 4) for k, v in seconds.items()
            },
            "total_seconds": round(sum(seconds.values()), 4),
        }
        all_cells[backend] = cells

    problems = compare_cells(all_cells["object"], all_cells["columnar"])
    speedup = {
        exp: round(
            backends["object"]["experiment_seconds"][exp]
            / max(backends["columnar"]["experiment_seconds"][exp], 1e-9),
            2,
        )
        for exp in backends["object"]["experiment_seconds"]
    }
    speedup["total"] = round(
        backends["object"]["total_seconds"]
        / max(backends["columnar"]["total_seconds"], 1e-9),
        2,
    )
    return {
        "schema": SCHEMA,
        "profile": profile,
        "trace_length": length,
        "seed": seed,
        "workloads": names,
        "native_kernels": native_kernels() is not None,
        "backends": backends,
        "speedup_vs_object": speedup,
        "parity": "identical" if not problems else "DIVERGED",
        "divergences": problems,
    }
