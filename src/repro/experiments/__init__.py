"""One module per paper artifact (table / figure), plus ablations.

Every experiment exposes ``run(...) -> ExperimentResult`` taking a trace
length and seed, so tests run them small and benches run them at the
default scale. ``repro-experiments`` (see :mod:`repro.experiments.runner`)
is the command-line entry point.
"""

from repro.exec.cells import single_cell_spec
from repro.experiments.common import (
    DEFAULT_TRACE_LENGTH,
    workload_traces,
)
from repro.experiments import (  # noqa: F401  (re-exported experiment modules)
    fig3_1,
    fig3_3,
    fig3_4,
    fig3_5,
    fig5_1,
    fig5_2,
    fig5_3,
    table3_2,
    ablations,
)

ALL_EXPERIMENTS = {
    "fig3.1": fig3_1.run,
    "table3.2": table3_2.run,
    "fig3.3": fig3_3.run,
    "fig3.4": fig3_4.run,
    "fig3.5": fig3_5.run,
    "fig5.1": fig5_1.run,
    "fig5.2": fig5_2.run,
    "fig5.3": fig5_3.run,
    "abl.banks": ablations.run_banks,
    "abl.merge": ablations.run_merge,
    "abl.predictor": ablations.run_predictor,
    "abl.classifier": ablations.run_classifier,
    "abl.window": ablations.run_window,
    "abl.tc": ablations.run_trace_cache,
    "abl.hints": ablations.run_hints,
    "abl.stability": ablations.run_stability,
    "abl.fetch": ablations.run_fetch_mechanisms,
    "abl.seeds": ablations.run_seeds,
    "abl.useless": ablations.run_useless,
}

# The same experiments as the engine sees them: picklable workload ×
# configuration grids. The paper artifacts expose real grids; the
# ablations run whole as single cells (still fanned out *across*
# experiments and memoized by the engine).
EXPERIMENT_SPECS = {
    "fig3.1": fig3_1.SPEC,
    "table3.2": table3_2.SPEC,
    "fig3.3": fig3_3.SPEC,
    "fig3.4": fig3_4.SPEC,
    "fig3.5": fig3_5.SPEC,
    "fig5.1": fig5_1.SPEC,
    "fig5.2": fig5_2.SPEC,
    "fig5.3": fig5_3.SPEC,
}
EXPERIMENT_SPECS.update({
    experiment_id: single_cell_spec(experiment_id, run)
    for experiment_id, run in ALL_EXPERIMENTS.items()
    if experiment_id.startswith("abl.")
})

# The differential-fuzz grid (repro.verify.diffcells): generated ISA
# programs as first-class cells, so the golden-diff verifier exercises
# the same engine/cache/daemon paths as the paper figures. Imported
# late — diffcells depends only on funcsim/core/dfg/verify, never on
# this package, so there is no cycle.
from repro.verify import diffcells as _diffcells  # noqa: E402

EXPERIMENT_SPECS[_diffcells.EXPERIMENT_ID] = _diffcells.SPEC

# The ablation framework's grids (repro.ablate): the component suite
# plus one full-lattice grid per sweep knob. Imported late for the
# same reason as diffcells — repro.ablate.suite never imports this
# package — and registered so the engine, the grid lints and the serve
# cluster all resolve ablation cells like fig/table cells. These are
# driven by ``repro-ablate`` rather than the runner, so they are not
# in ALL_EXPERIMENTS.
from repro.ablate import suite as _ablate_suite  # noqa: E402

EXPERIMENT_SPECS[_ablate_suite.SUITE_ID] = _ablate_suite.SPEC
EXPERIMENT_SPECS.update(_ablate_suite.SWEEP_SPECS)

__all__ = [
    "ALL_EXPERIMENTS",
    "DEFAULT_TRACE_LENGTH",
    "EXPERIMENT_SPECS",
    "workload_traces",
]
