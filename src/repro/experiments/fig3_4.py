"""EXP-3.4 — Figure 3.4: distribution of dependencies by their DID.

Histogram of all DFG arcs over DID bins; the paper's headline is that
roughly 60 % of true-data dependencies (on average) span a distance of
at least 4 instructions, so a 4-wide machine cannot profit from most
correct value predictions.

The grid is one cell per benchmark (one histogram each).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.report import ExperimentResult, format_percent
from repro.dfg import DIDHistogram, build_dfg
from repro.exec.cells import Cell, ExperimentSpec
from repro.experiments.common import DEFAULT_TRACE_LENGTH, get_trace, mean
from repro.workloads import WORKLOAD_NAMES

EXPERIMENT_ID = "fig3.4"
TITLE = "Distribution of dependencies according to their DID"


def compute_cell(workload: str, trace_length: int, seed: int) -> dict:
    """One benchmark's DID histogram (bin labels, fractions, long tail)."""
    trace = get_trace(workload, trace_length, seed)
    histogram = DIDHistogram.from_graph(build_dfg(trace))
    return {
        "workload": workload,
        "labels": list(histogram.labels()),
        "fractions": list(histogram.fractions()),
        "long": histogram.fraction_at_least(4),
    }


def cells(
    trace_length: int = DEFAULT_TRACE_LENGTH,
    seed: int = 0,
    workloads: Optional[Sequence[str]] = None,
) -> List[Cell]:
    names = list(workloads) if workloads else list(WORKLOAD_NAMES)
    return [
        Cell(
            EXPERIMENT_ID,
            name,
            compute_cell,
            {"workload": name, "trace_length": trace_length, "seed": seed},
        )
        for name in names
    ]


def assemble(values: Dict[str, Any], trace_length: int = 0,
             seed: int = 0) -> ExperimentResult:
    del trace_length, seed
    bins_header: Optional[Sequence[str]] = None
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=[],  # filled after the first histogram fixes the bins
    )
    at_least_4 = []
    for value in values.values():
        if bins_header is None:
            bins_header = value["labels"]
            result.headers = ["benchmark"] + list(bins_header) + ["DID>=4"]
        at_least_4.append(value["long"])
        result.rows.append(
            [value["workload"]]
            + [format_percent(f) for f in value["fractions"]]
            + [format_percent(value["long"])]
        )
    result.rows.append(
        ["avg"]
        + ["" for _ in (bins_header or [])]
        + [format_percent(mean(at_least_4))]
    )
    result.notes.append(
        "paper: ~60% of dependencies (avg) span a distance >= 4 instructions"
    )
    return result


def run(
    trace_length: int = DEFAULT_TRACE_LENGTH,
    seed: int = 0,
    workloads: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    """Regenerate Figure 3.4 (serial path over the same cells)."""
    grid = cells(trace_length, seed, workloads)
    return assemble({cell.cell_id: cell.compute() for cell in grid})


SPEC = ExperimentSpec(EXPERIMENT_ID, cells, assemble)
