"""EXP-3.4 — Figure 3.4: distribution of dependencies by their DID.

Histogram of all DFG arcs over DID bins; the paper's headline is that
roughly 60 % of true-data dependencies (on average) span a distance of
at least 4 instructions, so a 4-wide machine cannot profit from most
correct value predictions.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.report import ExperimentResult, format_percent
from repro.dfg import DIDHistogram, build_dfg
from repro.experiments.common import DEFAULT_TRACE_LENGTH, mean, workload_traces


def run(
    trace_length: int = DEFAULT_TRACE_LENGTH,
    seed: int = 0,
    workloads: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    """Regenerate Figure 3.4."""
    traces = workload_traces(trace_length, seed, workloads)
    bins_header: Optional[Sequence[str]] = None
    result = ExperimentResult(
        experiment_id="fig3.4",
        title="Distribution of dependencies according to their DID",
        headers=[],  # filled after the first histogram fixes the bins
    )
    at_least_4 = []
    for name, trace in traces.items():
        histogram = DIDHistogram.from_graph(build_dfg(trace))
        if bins_header is None:
            bins_header = histogram.labels()
            result.headers = ["benchmark"] + list(bins_header) + ["DID>=4"]
        fraction_long = histogram.fraction_at_least(4)
        at_least_4.append(fraction_long)
        result.rows.append(
            [name]
            + [format_percent(f) for f in histogram.fractions()]
            + [format_percent(fraction_long)]
        )
    result.rows.append(
        ["avg"]
        + ["" for _ in (bins_header or [])]
        + [format_percent(mean(at_least_4))]
    )
    result.notes.append(
        "paper: ~60% of dependencies (avg) span a distance >= 4 instructions"
    )
    return result
