"""EXP-3.3 — Figure 3.3: average Dynamic Instruction Distance.

One DFG per benchmark over the full trace (loop-carried and
inter-basic-block arcs included); the average DID is the arithmetic mean
over all arcs. The paper's headline: every benchmark averages above the
4-instruction fetch bandwidth of then-current processors.

The grid is one cell per benchmark (one DFG each).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.report import ExperimentResult
from repro.dfg import average_did, build_dfg
from repro.exec.cells import Cell, ExperimentSpec
from repro.experiments.common import DEFAULT_TRACE_LENGTH, get_trace, mean
from repro.workloads import WORKLOAD_NAMES

EXPERIMENT_ID = "fig3.3"
TITLE = "Average DID per benchmark"


def compute_cell(workload: str, trace_length: int, seed: int) -> dict:
    """One benchmark's DFG arc count and average DID."""
    trace = get_trace(workload, trace_length, seed)
    graph = build_dfg(trace)
    return {
        "workload": workload,
        "arcs": graph.n_arcs,
        "did": average_did(graph),
    }


def cells(
    trace_length: int = DEFAULT_TRACE_LENGTH,
    seed: int = 0,
    workloads: Optional[Sequence[str]] = None,
) -> List[Cell]:
    names = list(workloads) if workloads else list(WORKLOAD_NAMES)
    return [
        Cell(
            EXPERIMENT_ID,
            name,
            compute_cell,
            {"workload": name, "trace_length": trace_length, "seed": seed},
        )
        for name in names
    ]


def assemble(values: Dict[str, Any], trace_length: int = 0,
             seed: int = 0) -> ExperimentResult:
    del trace_length, seed
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=["benchmark", "arcs", "average DID"],
    )
    dids = []
    for value in values.values():
        dids.append(value["did"])
        result.rows.append(
            [value["workload"], str(value["arcs"]), f"{value['did']:.2f}"]
        )
    result.rows.append(["avg", "", f"{mean(dids):.2f}"])
    result.notes.append(
        "paper: all benchmarks exhibit an average DID greater than the "
        "4-instruction fetch bandwidth of present processors"
    )
    return result


def run(
    trace_length: int = DEFAULT_TRACE_LENGTH,
    seed: int = 0,
    workloads: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    """Regenerate Figure 3.3 (serial path over the same cells)."""
    grid = cells(trace_length, seed, workloads)
    return assemble({cell.cell_id: cell.compute() for cell in grid})


SPEC = ExperimentSpec(EXPERIMENT_ID, cells, assemble)
