"""EXP-3.3 — Figure 3.3: average Dynamic Instruction Distance.

One DFG per benchmark over the full trace (loop-carried and
inter-basic-block arcs included); the average DID is the arithmetic mean
over all arcs. The paper's headline: every benchmark averages above the
4-instruction fetch bandwidth of then-current processors.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.report import ExperimentResult
from repro.dfg import average_did, build_dfg
from repro.experiments.common import DEFAULT_TRACE_LENGTH, mean, workload_traces


def run(
    trace_length: int = DEFAULT_TRACE_LENGTH,
    seed: int = 0,
    workloads: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    """Regenerate Figure 3.3."""
    traces = workload_traces(trace_length, seed, workloads)
    result = ExperimentResult(
        experiment_id="fig3.3",
        title="Average DID per benchmark",
        headers=["benchmark", "arcs", "average DID"],
    )
    values = []
    for name, trace in traces.items():
        graph = build_dfg(trace)
        did = average_did(graph)
        values.append(did)
        result.rows.append([name, str(graph.n_arcs), f"{did:.2f}"])
    result.rows.append(["avg", "", f"{mean(values):.2f}"])
    result.notes.append(
        "paper: all benchmarks exhibit an average DID greater than the "
        "4-instruction fetch bandwidth of present processors"
    )
    return result
