"""Ablation studies for design choices the paper raises but does not sweep.

* banks — prediction-table interleaving degree vs bank-conflict denials
  and speedup on the trace-cache machine (Section 4's sizing question).
* merge — the address router's duplicate-request merging on/off
  (Figure 4.1's port-conflict problem, quantified).
* predictor — last-value vs stride vs 2-delta vs hybrid on the ideal
  machine (the Section 2/4 design space).
* classifier — saturating-counter sizing for the classification unit.
* window — instruction-window sensitivity at a fixed fetch rate.
* tc — trace-cache geometry sweep (the paper's closing note).
* hints — Section 4.2's opcode-hint offload of the router.
* stability — trace-length sensitivity of the headline result.
* fetch — fetch-mechanism comparison (sequential, collapsing
  buffer, trace cache) in the spirit of [18].

Machine assembly is registry-backed: every study builds its fetch
engines and VP units through :mod:`repro.ablate.machine` — the same
builders behind the ``repro-ablate`` component registry and its
``abl.suite`` / ``abl.sweep.*`` grids — so these historical tables and
the framework's importance scores cannot drift apart.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.ablate.machine import (
    build_fetch_engine,
    build_vp_unit,
    ideal_vp_speedup,
    realistic_speedup_and_denial,
)
from repro.analysis.report import ExperimentResult, format_percent
from repro.bpred import TwoLevelBTB
from repro.core import (
    IdealConfig,
    RealisticConfig,
    plan_value_predictions,
    simulate_ideal,
    simulate_realistic,
    speedup,
)
from repro.experiments.common import DEFAULT_TRACE_LENGTH, mean, workload_traces
from repro.experiments.fig5_3 import make_vp_unit
from repro.vpred import (
    ClassifiedPredictor,
    SaturatingClassifier,
    StridePredictor,
    make_predictor,
    profile_hints,
)


def run_banks(
    trace_length: int = DEFAULT_TRACE_LENGTH,
    seed: int = 0,
    bank_counts: Sequence[int] = (1, 2, 4, 8, 16, 32),
    workloads: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    """ABL-banks: table interleaving degree."""
    traces = workload_traces(trace_length, seed, workloads)
    result = ExperimentResult(
        experiment_id="abl.banks",
        title="VP-table bank count on the trace-cache machine (avg)",
        headers=["banks", "avg speedup", "avg denial rate"],
    )
    for n_banks in bank_counts:
        gains, denials = [], []
        for trace in traces.values():
            gain, denial = realistic_speedup_and_denial(
                trace, make_vp_unit(n_banks)
            )
            gains.append(gain)
            denials.append(denial)
        result.rows.append(
            [str(n_banks), format_percent(mean(gains)), format_percent(mean(denials))]
        )
    result.notes.append(
        "more banks -> fewer different-PC port conflicts -> more slots served"
    )
    return result


def run_merge(
    trace_length: int = DEFAULT_TRACE_LENGTH,
    seed: int = 0,
    workloads: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    """ABL-merge: router duplicate-request merging on/off."""
    traces = workload_traces(trace_length, seed, workloads)
    result = ExperimentResult(
        experiment_id="abl.merge",
        title="Address-router request merging (trace-cache machine)",
        headers=["benchmark", "merge on", "merge off"],
    )
    on_gains, off_gains = [], []
    for name, trace in traces.items():
        gain_on, _d = realistic_speedup_and_denial(
            trace, make_vp_unit(merge_requests=True)
        )
        gain_off, _d = realistic_speedup_and_denial(
            trace, make_vp_unit(merge_requests=False)
        )
        on_gains.append(gain_on)
        off_gains.append(gain_off)
        result.rows.append(
            [name, format_percent(gain_on), format_percent(gain_off)]
        )
    result.rows.append(
        ["avg", format_percent(mean(on_gains)), format_percent(mean(off_gains))]
    )
    result.notes.append(
        "without merging, loop copies fetched together lose their predictions "
        "(the Figure 4.1/4.2 problem)"
    )
    return result


def run_predictor(
    trace_length: int = DEFAULT_TRACE_LENGTH,
    seed: int = 0,
    fetch_rate: int = 16,
    workloads: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    """ABL-predictor: predictor family on the ideal machine."""
    traces = workload_traces(trace_length, seed, workloads)
    kinds = ("last", "stride", "two-delta", "hybrid")
    result = ExperimentResult(
        experiment_id="abl.predictor",
        title=f"Predictor family, ideal machine @ fetch rate {fetch_rate}",
        headers=["benchmark"] + list(kinds),
    )
    sums = {kind: [] for kind in kinds}
    config = IdealConfig(fetch_rate=fetch_rate)
    for name, trace in traces.items():
        cells = [name]
        for kind in kinds:
            hints = profile_hints(trace) if kind == "hybrid" else None
            predictor = make_predictor(kind=kind, hints=hints)
            gain = ideal_vp_speedup(trace, predictor, config)
            sums[kind].append(gain)
            cells.append(format_percent(gain))
        result.rows.append(cells)
    result.rows.append(
        ["avg"] + [format_percent(mean(sums[kind])) for kind in kinds]
    )
    return result


def run_classifier(
    trace_length: int = DEFAULT_TRACE_LENGTH,
    seed: int = 0,
    fetch_rate: int = 16,
    workloads: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    """ABL-classifier: counter sizing (bits, threshold), incl. none."""
    traces = workload_traces(trace_length, seed, workloads)
    variants = [("none", None), ("1b/1", (1, 1)), ("2b/2", (2, 2)),
                ("2b/3", (2, 3)), ("3b/4", (3, 4))]
    result = ExperimentResult(
        experiment_id="abl.classifier",
        title=f"Classifier sizing, ideal machine @ fetch rate {fetch_rate}",
        headers=["variant", "avg speedup", "avg accuracy of used predictions"],
    )
    config = IdealConfig(fetch_rate=fetch_rate)
    for label, sizing in variants:
        gains, accuracies = [], []
        for trace in traces.values():
            if sizing is None:
                predictor = make_predictor(classified=False)
            else:
                bits, threshold = sizing
                predictor = ClassifiedPredictor(
                    StridePredictor(),
                    SaturatingClassifier(bits=bits, threshold=threshold),
                )
            gains.append(ideal_vp_speedup(trace, predictor, config))
            accuracies.append(predictor.stats.accuracy)
        result.rows.append(
            [label, format_percent(mean(gains)), format_percent(mean(accuracies))]
        )
    result.notes.append(
        "the ideal machine has no misprediction penalty, so the classifier "
        "mostly trades coverage for accuracy; its value shows on the "
        "realistic machine (penalty 1)"
    )
    return result


def run_window(
    trace_length: int = DEFAULT_TRACE_LENGTH,
    seed: int = 0,
    fetch_rate: int = 16,
    window_sizes: Sequence[int] = (16, 40, 64, 128),
    workloads: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    """ABL-window: instruction-window sensitivity."""
    traces = workload_traces(trace_length, seed, workloads)
    result = ExperimentResult(
        experiment_id="abl.window",
        title=f"Window size, ideal machine @ fetch rate {fetch_rate}",
        headers=["window", "avg base IPC", "avg VP speedup"],
    )
    for window in window_sizes:
        config = IdealConfig(fetch_rate=fetch_rate, window=window)
        ipcs, gains = [], []
        for trace in traces.values():
            ipcs.append(simulate_ideal(trace, config).ipc)
            gains.append(ideal_vp_speedup(trace, make_predictor(), config))
        result.rows.append(
            [str(window), f"{mean(ipcs):.2f}", format_percent(mean(gains))]
        )
    return result


def run_trace_cache(
    trace_length: int = DEFAULT_TRACE_LENGTH,
    seed: int = 0,
    workloads: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    """ABL-tc: trace-cache geometry (the paper notes Fig 5.3 improves
    with a better-tuned trace cache — this sweep quantifies how)."""
    from repro.bpred import TwoLevelBTB
    from repro.fetch import TraceCacheFetchEngine

    traces = workload_traces(trace_length, seed, workloads)
    config = RealisticConfig()
    geometries = [
        ("16 x 32/6", dict(n_entries=16)),
        ("64 x 32/6 (paper)", dict(n_entries=64)),
        ("256 x 32/6", dict(n_entries=256)),
        ("64 x 16/3", dict(n_entries=64, line_size=16, max_blocks=3)),
        ("64 x 40/8", dict(n_entries=64, line_size=40, max_blocks=8)),
    ]
    result = ExperimentResult(
        experiment_id="abl.tc",
        title="Trace-cache geometry (2-level BTB, banked VP unit)",
        headers=["geometry", "avg hit rate", "avg fetched/cycle", "avg VP speedup"],
    )
    for label, kwargs in geometries:
        hits, widths, gains = [], [], []
        for trace in traces.values():
            engine = TraceCacheFetchEngine(**kwargs)
            bpred = TwoLevelBTB()
            plan = engine.plan(trace, bpred)
            base = simulate_realistic(trace, engine, bpred, None, config, plan)
            vp_unit = make_vp_unit()
            with_vp = simulate_realistic(trace, engine, bpred, vp_unit, config, plan)
            hits.append(engine.stats.hit_rate)
            widths.append(plan.mean_block_size())
            gains.append(speedup(with_vp, base))
        result.rows.append(
            [label, format_percent(mean(hits)), f"{mean(widths):.1f}",
             format_percent(mean(gains))]
        )
    result.notes.append(
        "the paper: 'results can be significantly improved by tuning the "
        "performance of the BTB and the trace cache'"
    )
    return result


def run_hints(
    trace_length: int = DEFAULT_TRACE_LENGTH,
    seed: int = 0,
    workloads: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    """ABL-hints: opcode-hint offload of the address router (Section 4.2:
    hints remove non-candidates before routing, cutting conflicts)."""
    traces = workload_traces(trace_length, seed, workloads)
    config = RealisticConfig()
    result = ExperimentResult(
        experiment_id="abl.hints",
        title="Opcode hints steering the banked hybrid predictor (4 banks)",
        headers=["benchmark", "requests w/o hints", "requests w/ hints",
                 "denial w/o", "denial w/", "speedup w/o", "speedup w/"],
    )
    for name, trace in traces.items():
        cells = [name]
        stats_pair = []
        for hinted in (False, True):
            engine = build_fetch_engine("trace_cache")
            bpred = TwoLevelBTB()
            plan = engine.plan(trace, bpred)
            base = simulate_realistic(trace, engine, bpred, None, config, plan)
            unit = build_vp_unit(trace, n_banks=4, hints=hinted)
            with_vp = simulate_realistic(trace, engine, bpred, unit, config, plan)
            stats_pair.append((unit.stats, speedup(with_vp, base)))
        (without, gain_without), (with_, gain_with) = stats_pair
        cells.extend([
            str(without.requests), str(with_.requests),
            format_percent(without.denial_rate),
            format_percent(with_.denial_rate),
            format_percent(gain_without), format_percent(gain_with),
        ])
        result.rows.append(cells)
    result.notes.append(
        "hints shrink router traffic (fewer conflicts on a narrow table) "
        "while steering PCs to the right sub-predictor"
    )
    return result


def run_stability(
    trace_length: int = DEFAULT_TRACE_LENGTH,
    seed: int = 0,
    workloads: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    """ABL-stability: trace-length sensitivity of the headline result
    (the paper reports results stable beyond its chosen trace length).

    Lengths are floored at 10k: below that, kernel warm-up phases (table
    clears, first-era creates) distort the mix and inflate speedups.
    """
    lengths = sorted({max(10_000, trace_length // 4),
                      max(10_000, trace_length // 2),
                      max(10_000, trace_length)})
    result = ExperimentResult(
        experiment_id="abl.stability",
        title="Headline (Fig 3.1 @ rate 16) vs trace length",
        headers=["trace length", "avg VP speedup @ BW=16"],
    )
    for length in lengths:
        traces = workload_traces(length, seed, workloads)
        gains = [
            ideal_vp_speedup(trace, make_predictor(), IdealConfig(fetch_rate=16))
            for trace in traces.values()
        ]
        result.rows.append([str(length), format_percent(mean(gains))])
    result.notes.append(
        "shape stability across lengths is what licenses 30k-instruction "
        "traces standing in for the paper's 100M"
    )
    return result


def run_fetch_mechanisms(
    trace_length: int = DEFAULT_TRACE_LENGTH,
    seed: int = 0,
    workloads: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    """ABL-fetch: fetch-mechanism comparison in the spirit of [18].

    Sequential fetch at 1 and 4 taken branches per cycle, the
    branch-address-cache + collapsing-buffer engine ([1], [28]) and the
    trace cache, all under the 2-level BTB with the same conventional
    VP unit, so differences isolate the fetch engine.
    """
    from repro.fetch import SequentialFetchEngine
    from repro.vphw import AbstractVPUnit

    traces = workload_traces(trace_length, seed, workloads)
    config = RealisticConfig()
    engines = [
        ("seq, 1 taken/cycle", lambda: build_fetch_engine("sequential")),
        ("seq, 4 taken/cycle", lambda: SequentialFetchEngine(width=40, max_taken=4)),
        ("collapsing buffer (2x16)", lambda: build_fetch_engine("collapsing")),
        ("trace cache (64x32/6)", lambda: build_fetch_engine("trace_cache")),
    ]
    result = ExperimentResult(
        experiment_id="abl.fetch",
        title="Fetch mechanisms under the 2-level BTB (avg of all workloads)",
        headers=["engine", "avg fetched/cycle", "avg base IPC", "avg VP speedup"],
    )
    for label, make_engine in engines:
        widths, ipcs, gains = [], [], []
        for trace in traces.values():
            engine = make_engine()
            bpred = TwoLevelBTB()
            plan = engine.plan(trace, bpred)
            base = simulate_realistic(trace, engine, bpred, None, config, plan)
            vp_unit = AbstractVPUnit(make_predictor())
            with_vp = simulate_realistic(trace, engine, bpred, vp_unit, config, plan)
            widths.append(plan.mean_block_size())
            ipcs.append(base.ipc)
            gains.append(speedup(with_vp, base))
        result.rows.append(
            [label, f"{mean(widths):.1f}", f"{mean(ipcs):.2f}",
             format_percent(mean(gains))]
        )
    result.notes.append(
        "the VP speedup tracks the effective fetch bandwidth regardless of "
        "which mechanism provides it — the paper's thesis"
    )
    return result


def run_seeds(
    trace_length: int = DEFAULT_TRACE_LENGTH,
    seed: int = 0,
    n_seeds: int = 3,
    workloads: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    """ABL-seeds: input-seed robustness of the headline result.

    The data-driven kernels (compress, gcc, perl, vortex...) regenerate
    their inputs per seed; the Fig 3.1 @ rate 16 average must not hinge
    on one particular input."""
    result = ExperimentResult(
        experiment_id="abl.seeds",
        title="Headline (Fig 3.1 @ rate 16) vs workload input seed",
        headers=["seed", "avg VP speedup @ BW=16"],
    )
    gains_by_seed = []
    for s in range(seed, seed + n_seeds):
        traces = workload_traces(trace_length, s, workloads)
        gains = [
            ideal_vp_speedup(trace, make_predictor(), IdealConfig(fetch_rate=16))
            for trace in traces.values()
        ]
        gains_by_seed.append(mean(gains))
        result.rows.append([str(s), format_percent(mean(gains))])
    spread = max(gains_by_seed) - min(gains_by_seed)
    result.notes.append(f"spread across seeds: {format_percent(spread)}")
    return result


def run_useless(
    trace_length: int = DEFAULT_TRACE_LENGTH,
    seed: int = 0,
    rates: Sequence[int] = (4, 8, 16, 32, 40),
    workloads: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    """ABL-useless: the fraction of *correct* predictions that are
    useless (consumer fetched after the producer executed) per fetch
    rate — the Section 3 mechanism, measured directly."""
    from repro.analysis.usefulness import useless_prediction_stats
    from repro.vpred import make_predictor as _make

    traces = workload_traces(trace_length, seed, workloads)
    result = ExperimentResult(
        experiment_id="abl.useless",
        title="Correct-but-useless predictions vs fetch rate (avg)",
        headers=["fetch rate", "avg useless fraction"],
    )
    plans = {
        name: plan_value_predictions(trace, _make())
        for name, trace in traces.items()
    }
    for rate in rates:
        fractions = []
        for name, trace in traces.items():
            stats = useless_prediction_stats(trace, plans[name], rate)
            fractions.append(stats.useless_fraction)
        result.rows.append([str(rate), format_percent(mean(fractions))])
    result.notes.append(
        "the paper's core observation: at narrow fetch, most correct "
        "predictions arrive after the real value would have anyway"
    )
    return result
