"""EXP-5.2 — Figure 5.2: VP speedup vs taken branches per cycle, with
the 2-level PAp BTB (2K entries, 2-way, 4-bit local history).

Identical to EXP-5.1 except for the branch predictor; comparing the two
figures isolates the impact of branch prediction accuracy on the
obtainable value-prediction speedup (the paper reports roughly 30 % of
the n=4 speedup is lost to the realistic BTB).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.report import ExperimentResult
from repro.bpred import TwoLevelBTB
from repro.experiments import fig5_1
from repro.experiments.common import DEFAULT_TRACE_LENGTH


def run(
    trace_length: int = DEFAULT_TRACE_LENGTH,
    seed: int = 0,
    taken_limits: Sequence[Optional[int]] = fig5_1.DEFAULT_TAKEN_LIMITS,
    workloads: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    """Regenerate Figure 5.2."""
    result = fig5_1.run(
        trace_length=trace_length,
        seed=seed,
        taken_limits=taken_limits,
        workloads=workloads,
        make_bpred=TwoLevelBTB,
        experiment_id="fig5.2",
        title="VP speedup vs taken branches/cycle (2-level PAp BTB)",
    )
    result.notes = [
        "paper (avg, 2-level BTB): ~3% at n=1 rising to ~20% at n=4; "
        "the paper's BTB averaged 86% accuracy"
    ]
    return result
