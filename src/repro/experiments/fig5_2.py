"""EXP-5.2 — Figure 5.2: VP speedup vs taken branches per cycle, with
the 2-level PAp BTB (2K entries, 2-way, 4-bit local history).

Identical to EXP-5.1 except for the branch predictor; comparing the two
figures isolates the impact of branch prediction accuracy on the
obtainable value-prediction speedup (the paper reports roughly 30 % of
the n=4 speedup is lost to the realistic BTB).

The grid is fig5_1's, instantiated with the 2-level BTB.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.report import ExperimentResult
from repro.bpred import TwoLevelBTB
from repro.exec.cells import Cell, ExperimentSpec
from repro.experiments import fig5_1
from repro.experiments.common import DEFAULT_TRACE_LENGTH

EXPERIMENT_ID = "fig5.2"
TITLE = "VP speedup vs taken branches/cycle (2-level PAp BTB)"
PAPER_NOTE = (
    "paper (avg, 2-level BTB): ~3% at n=1 rising to ~20% at n=4; "
    "the paper's BTB averaged 86% accuracy"
)


def cells(
    trace_length: int = DEFAULT_TRACE_LENGTH,
    seed: int = 0,
    workloads: Optional[Sequence[str]] = None,
    taken_limits: Sequence[Optional[int]] = fig5_1.DEFAULT_TAKEN_LIMITS,
) -> List[Cell]:
    return fig5_1.cells(
        trace_length, seed, workloads, taken_limits,
        make_bpred=TwoLevelBTB, experiment_id=EXPERIMENT_ID,
    )


def assemble(values: Dict[str, Any], trace_length: int = 0,
             seed: int = 0) -> ExperimentResult:
    return fig5_1.assemble(
        values, trace_length, seed,
        experiment_id=EXPERIMENT_ID, title=TITLE, note=PAPER_NOTE,
    )


def run(
    trace_length: int = DEFAULT_TRACE_LENGTH,
    seed: int = 0,
    taken_limits: Sequence[Optional[int]] = fig5_1.DEFAULT_TAKEN_LIMITS,
    workloads: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    """Regenerate Figure 5.2 (serial path over the same cells)."""
    grid = cells(trace_length, seed, workloads, taken_limits)
    return assemble({cell.cell_id: cell.compute() for cell in grid})


SPEC = ExperimentSpec(EXPERIMENT_ID, cells, assemble)
