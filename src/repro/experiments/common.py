"""Shared plumbing for the experiment modules."""

from __future__ import annotations

import functools
from typing import Dict, List, Optional, Sequence

from repro.trace.trace import Trace
from repro.workloads import WORKLOAD_NAMES, generate_trace

DEFAULT_TRACE_LENGTH = 30_000


@functools.lru_cache(maxsize=64)
def _cached_trace(name: str, length: int, seed: int) -> Trace:
    return generate_trace(name, length=length, seed=seed)


def workload_traces(
    length: int = DEFAULT_TRACE_LENGTH,
    seed: int = 0,
    workloads: Optional[Sequence[str]] = None,
) -> Dict[str, Trace]:
    """Traces for the requested workloads (all eight by default), cached
    so a bench session re-running several experiments shares them."""
    names: List[str] = list(workloads) if workloads else list(WORKLOAD_NAMES)
    return {name: _cached_trace(name, length, seed) for name in names}


def mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0
