"""Shared plumbing for the experiment modules."""

from __future__ import annotations

import functools
from typing import Dict, List, Optional, Sequence

from repro.exec.cache import fetch_trace
from repro.trace.trace import Trace
from repro.workloads import WORKLOAD_NAMES

DEFAULT_TRACE_LENGTH = 30_000


@functools.lru_cache(maxsize=64)
def _cached_trace(name: str, length: int, seed: int) -> Trace:
    # In-memory layer on top of the (optional) on-disk cache: repeated
    # requests in one process are free, and when a disk cache is active
    # (repro.exec.cache.activate / the engine / the bench session) the
    # first request per process loads instead of regenerating.
    return fetch_trace(name, length, seed)


def get_trace(name: str, length: int, seed: int) -> Trace:
    """One workload trace through both cache layers (memory, then disk).

    The entry point experiment cell functions use, so every worker
    process shares generated traces through the disk store.
    """
    return _cached_trace(name, length, seed)


def clear_trace_memory_cache() -> None:
    """Drop the in-process trace cache (tests use this to re-exercise
    the disk layer)."""
    _cached_trace.cache_clear()


def workload_traces(
    length: int = DEFAULT_TRACE_LENGTH,
    seed: int = 0,
    workloads: Optional[Sequence[str]] = None,
) -> Dict[str, Trace]:
    """Traces for the requested workloads (all eight by default), cached
    so a bench session re-running several experiments shares them."""
    names: List[str] = list(workloads) if workloads else list(WORKLOAD_NAMES)
    return {name: _cached_trace(name, length, seed) for name in names}


def mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0
