"""EXP-3.5 — Figure 3.5: dependencies by value predictability and DID.

Every DFG arc is classified by whether an infinite stride predictor
correctly predicted its producer's value for that dynamic instance, and
the predictable arcs are split at DID 4 (the fetch bandwidth of
then-current processors). The paper's headlines: the predictable-and-
long fraction is largest for m88ksim (~40 %) and vortex (>55 %) — the
benchmarks that react most to fetch bandwidth — while only ~23 % of
arcs (avg) are predictable and short enough for a 4-wide machine.

The grid is one cell per benchmark (one arc classification each).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.report import ExperimentResult, format_percent
from repro.dfg import ArcClass, classify_arcs
from repro.exec.cells import Cell, ExperimentSpec
from repro.experiments.common import DEFAULT_TRACE_LENGTH, get_trace, mean
from repro.workloads import WORKLOAD_NAMES

EXPERIMENT_ID = "fig3.5"
TITLE = "Dependencies by value predictability and DID"


def compute_cell(workload: str, trace_length: int, seed: int) -> dict:
    """One benchmark's arcs split by predictability × DID."""
    trace = get_trace(workload, trace_length, seed)
    breakdown = classify_arcs(trace)
    return {
        "workload": workload,
        "unpred": breakdown.fraction(ArcClass.UNPREDICTABLE),
        "short": breakdown.fraction(ArcClass.PREDICTABLE_SHORT),
        "long": breakdown.fraction(ArcClass.PREDICTABLE_LONG),
    }


def cells(
    trace_length: int = DEFAULT_TRACE_LENGTH,
    seed: int = 0,
    workloads: Optional[Sequence[str]] = None,
) -> List[Cell]:
    names = list(workloads) if workloads else list(WORKLOAD_NAMES)
    return [
        Cell(
            EXPERIMENT_ID,
            name,
            compute_cell,
            {"workload": name, "trace_length": trace_length, "seed": seed},
        )
        for name in names
    ]


def assemble(values: Dict[str, Any], trace_length: int = 0,
             seed: int = 0) -> ExperimentResult:
    del trace_length, seed
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=["benchmark", "unpredictable", "pred DID<4", "pred DID>=4"],
    )
    short_fractions, long_fractions = [], []
    for value in values.values():
        short_fractions.append(value["short"])
        long_fractions.append(value["long"])
        result.rows.append(
            [
                value["workload"],
                format_percent(value["unpred"]),
                format_percent(value["short"]),
                format_percent(value["long"]),
            ]
        )
    result.rows.append(
        [
            "avg",
            "",
            format_percent(mean(short_fractions)),
            format_percent(mean(long_fractions)),
        ]
    )
    result.notes.append(
        "paper: pred&DID>=4 ~40% (m88ksim), >55% (vortex), 20-25% others; "
        "pred&DID<4 ~23% on average"
    )
    return result


def run(
    trace_length: int = DEFAULT_TRACE_LENGTH,
    seed: int = 0,
    workloads: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    """Regenerate Figure 3.5 (serial path over the same cells)."""
    grid = cells(trace_length, seed, workloads)
    return assemble({cell.cell_id: cell.compute() for cell in grid})


SPEC = ExperimentSpec(EXPERIMENT_ID, cells, assemble)
