"""EXP-3.5 — Figure 3.5: dependencies by value predictability and DID.

Every DFG arc is classified by whether an infinite stride predictor
correctly predicted its producer's value for that dynamic instance, and
the predictable arcs are split at DID 4 (the fetch bandwidth of
then-current processors). The paper's headlines: the predictable-and-
long fraction is largest for m88ksim (~40 %) and vortex (>55 %) — the
benchmarks that react most to fetch bandwidth — while only ~23 % of
arcs (avg) are predictable and short enough for a 4-wide machine.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.report import ExperimentResult, format_percent
from repro.dfg import ArcClass, classify_arcs
from repro.experiments.common import DEFAULT_TRACE_LENGTH, mean, workload_traces


def run(
    trace_length: int = DEFAULT_TRACE_LENGTH,
    seed: int = 0,
    workloads: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    """Regenerate Figure 3.5."""
    traces = workload_traces(trace_length, seed, workloads)
    result = ExperimentResult(
        experiment_id="fig3.5",
        title="Dependencies by value predictability and DID",
        headers=["benchmark", "unpredictable", "pred DID<4", "pred DID>=4"],
    )
    short_fractions, long_fractions = [], []
    for name, trace in traces.items():
        breakdown = classify_arcs(trace)
        unpred = breakdown.fraction(ArcClass.UNPREDICTABLE)
        short = breakdown.fraction(ArcClass.PREDICTABLE_SHORT)
        long_ = breakdown.fraction(ArcClass.PREDICTABLE_LONG)
        short_fractions.append(short)
        long_fractions.append(long_)
        result.rows.append(
            [
                name,
                format_percent(unpred),
                format_percent(short),
                format_percent(long_),
            ]
        )
    result.rows.append(
        [
            "avg",
            "",
            format_percent(mean(short_fractions)),
            format_percent(mean(long_fractions)),
        ]
    )
    result.notes.append(
        "paper: pred&DID>=4 ~40% (m88ksim), >55% (vortex), 20-25% others; "
        "pred&DID<4 ~23% on average"
    )
    return result
