"""EXP-5.3 — Figure 5.3: VP speedup with a trace cache.

Machine: the Section 5 realistic machine. Fetch: a 64-entry
direct-mapped trace cache (≤32 instructions / ≤6 basic blocks per line,
fill unit fed by the fetch stream), run under both an ideal branch
predictor and the 2-level PAp BTB. Value prediction uses the Section 4
banked hardware — interleaved table, address router with merging, value
distributor — because trace-cache fetch can deliver several copies of
one instruction per cycle.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

from repro.analysis.report import ExperimentResult, format_percent
from repro.bpred import PerfectBranchPredictor, TwoLevelBTB
from repro.core import RealisticConfig, simulate_realistic, speedup
from repro.experiments.common import DEFAULT_TRACE_LENGTH, mean, workload_traces
from repro.fetch import TraceCacheFetchEngine
from repro.vphw import AddressRouter, BankedVPUnit
from repro.vpred import SaturatingClassifier, StridePredictor

DEFAULT_N_BANKS = 16


def make_vp_unit(
    n_banks: int = DEFAULT_N_BANKS, merge_requests: bool = True
) -> BankedVPUnit:
    """The paper's Section 4 assembly with a stride predictor."""
    return BankedVPUnit(
        predictor=StridePredictor(),
        router=AddressRouter(n_banks=n_banks),
        classifier=SaturatingClassifier(bits=2, threshold=2),
        merge_requests=merge_requests,
    )


def run(
    trace_length: int = DEFAULT_TRACE_LENGTH,
    seed: int = 0,
    workloads: Optional[Sequence[str]] = None,
    n_banks: int = DEFAULT_N_BANKS,
) -> ExperimentResult:
    """Regenerate Figure 5.3."""
    traces = workload_traces(trace_length, seed, workloads)
    config = RealisticConfig()
    predictors: Dict[str, Callable] = {
        "TC+idealBTB": PerfectBranchPredictor,
        "TC+2levelBTB": TwoLevelBTB,
    }
    result = ExperimentResult(
        experiment_id="fig5.3",
        title="VP speedup when using a trace cache",
        headers=["benchmark"] + list(predictors),
    )
    per_column = {column: [] for column in predictors}
    for name, trace in traces.items():
        cells = [name]
        for column, make_bpred in predictors.items():
            engine = TraceCacheFetchEngine()
            bpred = make_bpred()
            plan = engine.plan(trace, bpred)
            base = simulate_realistic(
                trace, engine, bpred, vp_unit=None, config=config, plan=plan
            )
            vp_unit = make_vp_unit(n_banks=n_banks)
            with_vp = simulate_realistic(
                trace, engine, bpred, vp_unit=vp_unit, config=config, plan=plan
            )
            gain = speedup(with_vp, base)
            per_column[column].append(gain)
            cells.append(format_percent(gain))
        result.rows.append(cells)
    result.rows.append(
        ["avg"]
        + [format_percent(mean(per_column[column])) for column in predictors]
    )
    result.notes.append(
        "paper: >10% average with the 2-level BTB, <40% average with the "
        "ideal branch predictor"
    )
    return result
