"""EXP-5.3 — Figure 5.3: VP speedup with a trace cache.

Machine: the Section 5 realistic machine. Fetch: a 64-entry
direct-mapped trace cache (≤32 instructions / ≤6 basic blocks per line,
fill unit fed by the fetch stream), run under both an ideal branch
predictor and the 2-level PAp BTB. Value prediction uses the Section 4
banked hardware — interleaved table, address router with merging, value
distributor — because trace-cache fetch can deliver several copies of
one instruction per cycle.

The grid is benchmark × branch-predictor column; one cell plans the
trace-cache fetch once and runs its speedup pair over the shared plan.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.report import ExperimentResult, format_percent
from repro.bpred import PerfectBranchPredictor, TwoLevelBTB
from repro.core import RealisticConfig, simulate_realistic, speedup
from repro.exec.cells import Cell, ExperimentSpec
from repro.experiments.common import DEFAULT_TRACE_LENGTH, get_trace, mean
from repro.fetch import TraceCacheFetchEngine
from repro.vphw import AddressRouter, BankedVPUnit
from repro.vpred import SaturatingClassifier, StridePredictor
from repro.workloads import WORKLOAD_NAMES

DEFAULT_N_BANKS = 16

EXPERIMENT_ID = "fig5.3"
TITLE = "VP speedup when using a trace cache"

# Column label -> branch predictor factory, in the figure's order.
COLUMNS = {
    "TC+idealBTB": PerfectBranchPredictor,
    "TC+2levelBTB": TwoLevelBTB,
}


def make_vp_unit(
    n_banks: int = DEFAULT_N_BANKS, merge_requests: bool = True
) -> BankedVPUnit:
    """The paper's Section 4 assembly with a stride predictor."""
    return BankedVPUnit(
        predictor=StridePredictor(),
        router=AddressRouter(n_banks=n_banks),
        classifier=SaturatingClassifier(bits=2, threshold=2),
        merge_requests=merge_requests,
    )


def compute_cell(
    workload: str, column: str, trace_length: int, seed: int,
    n_banks: int = DEFAULT_N_BANKS,
) -> dict:
    """One grid point: the speedup pair under one branch predictor."""
    trace = get_trace(workload, trace_length, seed)
    config = RealisticConfig()
    engine = TraceCacheFetchEngine()
    bpred = COLUMNS[column]()
    plan = engine.plan(trace, bpred)
    base = simulate_realistic(
        trace, engine, bpred, vp_unit=None, config=config, plan=plan
    )
    vp_unit = make_vp_unit(n_banks=n_banks)
    with_vp = simulate_realistic(
        trace, engine, bpred, vp_unit=vp_unit, config=config, plan=plan
    )
    return {"workload": workload, "column": column, "gain": speedup(with_vp, base)}


def cells(
    trace_length: int = DEFAULT_TRACE_LENGTH,
    seed: int = 0,
    workloads: Optional[Sequence[str]] = None,
    n_banks: int = DEFAULT_N_BANKS,
) -> List[Cell]:
    names = list(workloads) if workloads else list(WORKLOAD_NAMES)
    return [
        Cell(
            EXPERIMENT_ID,
            f"{name}|{column}",
            compute_cell,
            {"workload": name, "column": column,
             "trace_length": trace_length, "seed": seed, "n_banks": n_banks},
        )
        for name in names
        for column in COLUMNS
    ]


def assemble(values: Dict[str, Any], trace_length: int = 0,
             seed: int = 0) -> ExperimentResult:
    del trace_length, seed
    columns: List[str] = []
    rows: Dict[str, Dict[str, float]] = {}
    for value in values.values():
        rows.setdefault(value["workload"], {})[value["column"]] = value["gain"]
        if value["column"] not in columns:
            columns.append(value["column"])
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=["benchmark"] + columns,
    )
    for name, gains in rows.items():
        result.rows.append(
            [name] + [format_percent(gains[column]) for column in columns]
        )
    result.rows.append(
        ["avg"]
        + [
            format_percent(mean([gains[column] for gains in rows.values()]))
            for column in columns
        ]
    )
    result.notes.append(
        "paper: >10% average with the 2-level BTB, <40% average with the "
        "ideal branch predictor"
    )
    return result


def run(
    trace_length: int = DEFAULT_TRACE_LENGTH,
    seed: int = 0,
    workloads: Optional[Sequence[str]] = None,
    n_banks: int = DEFAULT_N_BANKS,
) -> ExperimentResult:
    """Regenerate Figure 5.3 (serial path over the same cells)."""
    grid = cells(trace_length, seed, workloads, n_banks)
    return assemble({cell.cell_id: cell.compute() for cell in grid})


SPEC = ExperimentSpec(EXPERIMENT_ID, cells, assemble)
