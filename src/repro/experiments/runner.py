"""Command-line entry point: regenerate paper artifacts.

Usage::

    repro-experiments                      # everything, default scale
    repro-experiments fig3.1 fig5.3        # selected experiments
    repro-experiments --length 10000       # smaller traces (faster)
    repro-experiments --verify-invariants  # self-audit every simulation
    repro-experiments --list
"""

from __future__ import annotations

import argparse
import contextlib
import sys
import time
from typing import List, Optional

from repro.experiments import ALL_EXPERIMENTS
from repro.experiments.common import DEFAULT_TRACE_LENGTH


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of Gabbay & "
        "Mendelson, 'The Effect of Instruction Fetch Bandwidth on Value "
        "Prediction' (ISCA 1998).",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help="experiment ids (default: all); see --list",
    )
    parser.add_argument(
        "--length",
        type=int,
        default=DEFAULT_TRACE_LENGTH,
        help=f"trace length per workload (default {DEFAULT_TRACE_LENGTH})",
    )
    parser.add_argument("--seed", type=int, default=0, help="workload seed")
    parser.add_argument(
        "--verify-invariants",
        action="store_true",
        help="lint every simulation against the paper's machine "
        "invariants (repro.verify); violations abort the run",
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiment ids and exit"
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list:
        for experiment_id in ALL_EXPERIMENTS:
            print(experiment_id)
        return 0

    selected = args.experiments or list(ALL_EXPERIMENTS)
    unknown = [e for e in selected if e not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(ALL_EXPERIMENTS)}", file=sys.stderr)
        return 2

    if args.verify_invariants:
        from repro.verify import verified_simulations

        checked = verified_simulations()
    else:
        checked = contextlib.nullcontext()

    with checked:
        for experiment_id in selected:
            run = ALL_EXPERIMENTS[experiment_id]
            started = time.time()
            result = run(trace_length=args.length, seed=args.seed)
            elapsed = time.time() - started
            print(result.format())
            print(f"({elapsed:.1f}s)")
            print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
