"""Command-line entry point: regenerate paper artifacts.

Usage::

    repro-experiments                      # everything, default scale
    repro-experiments fig3.1 fig5.3        # selected experiments
    repro-experiments --length 10000       # smaller traces (faster)
    repro-experiments --jobs 4             # fan cells out over 4 processes
    repro-experiments --json out/          # manifest + per-experiment JSON
    repro-experiments --cache-dir /tmp/c   # relocate the on-disk cache
    repro-experiments --verify-invariants  # self-audit every simulation
    repro-experiments --list
    repro-experiments cache stats          # on-disk cache accounting
    repro-experiments cache prune --max-bytes 50000000

The ``cache`` subcommand inspects and bounds the on-disk cache shared
by batch runs and the serve daemon: ``stats`` prints entry counts and
byte totals (per experiment for cells), ``prune`` evicts least-recently
used entries until the cache fits ``--max-bytes``. The accounting is
:meth:`repro.exec.DiskCache.accounting` — the same numbers the serve
``stats`` endpoint reports.

Experiments run through :class:`repro.exec.ExperimentEngine`: their
workload × configuration cells fan out over ``--jobs`` worker processes
(default: all CPUs), generated traces and completed cells are cached on
disk under ``--cache-dir`` (default ``~/.cache/repro`` or
``$REPRO_CACHE_DIR``), and re-runs resume from the cache instead of
recomputing. ``--jobs 1`` runs every cell serially in-process.

``--verify-invariants`` forces ``--jobs 1``: checked mode works by
installing module-level hooks into the timing cores
(:mod:`repro.verify.checked`), and those hooks do not cross process
boundaries — worker processes would silently simulate unaudited.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import sys
from typing import List, Optional

from repro.cliutil import CleanArgumentParser, nonnegative_int, positive_int
from repro.exec import DiskCache, ExperimentEngine, default_cache_dir, write_artifacts
from repro.experiments import ALL_EXPERIMENTS, EXPERIMENT_SPECS
from repro.experiments.common import DEFAULT_TRACE_LENGTH


def build_parser() -> argparse.ArgumentParser:
    parser = CleanArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of Gabbay & "
        "Mendelson, 'The Effect of Instruction Fetch Bandwidth on Value "
        "Prediction' (ISCA 1998).",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help="experiment ids (default: all); see --list",
    )
    parser.add_argument(
        "--length",
        type=positive_int,
        default=DEFAULT_TRACE_LENGTH,
        help=f"trace length per workload (default {DEFAULT_TRACE_LENGTH})",
    )
    parser.add_argument("--seed", type=int, default=0, help="workload seed")
    parser.add_argument(
        "--jobs",
        type=positive_int,
        default=None,
        metavar="N",
        help="worker processes for the experiment grids "
        "(default: os.cpu_count(); 1 = serial, in-process)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="on-disk cache for traces and completed cells "
        "(default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk cache (recompute everything)",
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="DIR",
        help="write manifest.json, per-experiment results and "
        "metrics.json into DIR",
    )
    parser.add_argument(
        "--verify-invariants",
        action="store_true",
        help="lint every simulation against the paper's machine "
        "invariants (repro.verify); violations abort the run; "
        "implies --jobs 1 (the checked-mode hooks are per-process)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiment ids and exit"
    )
    return parser


def build_cache_parser() -> argparse.ArgumentParser:
    parser = CleanArgumentParser(
        prog="repro-experiments cache",
        description="Inspect and bound the on-disk trace/cell cache.",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="cache root (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    commands = parser.add_subparsers(dest="cache_command", required=True)
    stats = commands.add_parser(
        "stats", help="entry counts and byte totals, per experiment"
    )
    stats.add_argument(
        "--json", action="store_true", help="print the accounting as JSON"
    )
    prune = commands.add_parser(
        "prune", help="evict least-recently-used entries to fit a budget"
    )
    prune.add_argument(
        "--max-bytes",
        type=nonnegative_int,
        required=True,
        metavar="N",
        help="shrink the cache to at most N bytes (oldest entries first)",
    )
    return parser


def cache_main(argv: List[str]) -> int:
    args = build_cache_parser().parse_args(argv)
    cache = DiskCache(args.cache_dir or default_cache_dir())
    accounting = cache.accounting()
    if args.cache_command == "stats":
        if args.json:
            print(json.dumps(accounting, indent=2, sort_keys=True))
            return 0
        print(f"cache: {accounting['root']}")
        traces = accounting["traces"]
        print(f"traces: {traces['entries']} entries, {traces['bytes']} bytes")
        cells = accounting["cells"]
        print(f"cells:  {cells['entries']} entries, {cells['bytes']} bytes")
        for experiment_id in sorted(cells["per_experiment"]):
            entry = cells["per_experiment"][experiment_id]
            print(
                f"  {experiment_id}: {entry['entries']} entries, "
                f"{entry['bytes']} bytes"
            )
        print(f"total:  {accounting['total_bytes']} bytes")
        return 0
    report = cache.prune(args.max_bytes)
    print(
        f"pruned {report['evicted']} entries "
        f"({report['evicted_bytes']} bytes); "
        f"{report['kept_bytes']} bytes kept"
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    raw = list(sys.argv[1:] if argv is None else argv)
    if raw and raw[0] == "cache":
        return cache_main(raw[1:])
    args = build_parser().parse_args(raw)
    if args.list:
        for experiment_id in ALL_EXPERIMENTS:
            print(experiment_id)
        return 0

    selected = args.experiments or list(ALL_EXPERIMENTS)
    unknown = [e for e in selected if e not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(ALL_EXPERIMENTS)}", file=sys.stderr)
        return 2

    jobs = args.jobs if args.jobs is not None else (os.cpu_count() or 1)
    if args.verify_invariants and jobs > 1:
        print(
            "note: --verify-invariants runs single-process (its hooks do "
            "not cross process boundaries); forcing --jobs 1",
            file=sys.stderr,
        )
        jobs = 1

    cache = None
    if not args.no_cache:
        cache = DiskCache(args.cache_dir or default_cache_dir())

    if args.verify_invariants:
        from repro.verify import verified_simulations

        checked = verified_simulations()
    else:
        checked = contextlib.nullcontext()

    engine = ExperimentEngine(jobs=jobs, cache=cache)
    with checked:
        report = engine.run(
            selected, args.length, args.seed, specs=EXPERIMENT_SPECS
        )

    for experiment_id in selected:
        timing = report.experiment_timing(experiment_id)
        if experiment_id in report.results:
            print(report.results[experiment_id].format())
            print(
                f"({timing['busy_seconds']:.1f}s over {timing['cells']} "
                f"cells, {timing['memoized']} from cache)"
            )
            print()
        else:
            print(f"== {experiment_id}: FAILED ==", file=sys.stderr)
            for error in report.errors[experiment_id]:
                print(f"  {error}", file=sys.stderr)

    stats = report.cache_stats
    if stats:
        print(
            f"[engine] jobs={report.jobs} span={report.span_seconds:.1f}s "
            f"utilization={report.utilization():.0%} "
            f"cells hit/miss={stats['cell_hits']}/{stats['cell_misses']}"
        )
    else:
        print(
            f"[engine] jobs={report.jobs} span={report.span_seconds:.1f}s "
            f"utilization={report.utilization():.0%} (cache disabled)"
        )

    if args.json:
        manifest = write_artifacts(report, args.json)
        print(f"[engine] wrote {manifest}")

    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
