"""EXP-5.1 — Figure 5.1: VP speedup vs taken branches per cycle, with an
ideal branch predictor.

Machine: the Section 5 realistic machine (window 40, 40 FUs, issue 40,
branch penalty 3, value penalty 1). Fetch: sequential, width 40, up to
n taken branches per cycle, n ∈ {1, 2, 3, 4, unlimited}. The branch
predictor is perfect, isolating fetch bandwidth from prediction
accuracy. VP hardware: the conventional (conflict-free) stride unit
with a 2-bit classifier.

The grid is benchmark × taken-branch limit; one cell plans the fetch
once and runs the no-VP/VP speedup pair over that shared plan. fig5_2
reuses the whole grid with its 2-level BTB.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.report import ExperimentResult, format_percent
from repro.bpred import PerfectBranchPredictor
from repro.core import RealisticConfig, simulate_realistic, speedup
from repro.exec.cells import Cell, ExperimentSpec
from repro.experiments.common import DEFAULT_TRACE_LENGTH, get_trace, mean
from repro.fetch import SequentialFetchEngine
from repro.vphw import AbstractVPUnit
from repro.vpred import make_predictor
from repro.workloads import WORKLOAD_NAMES

DEFAULT_TAKEN_LIMITS: Tuple[Optional[int], ...] = (1, 2, 3, 4, None)

EXPERIMENT_ID = "fig5.1"
TITLE = "VP speedup vs taken branches/cycle (ideal BTB)"
PAPER_NOTE = "paper (avg, ideal BTB): ~3% at n=1 rising to ~50% at n=4"


def _label(limit: Optional[int]) -> str:
    return "unlimited" if limit is None else f"n={limit}"


def compute_cell(
    workload: str,
    limit: Optional[int],
    trace_length: int,
    seed: int,
    make_bpred=PerfectBranchPredictor,
) -> dict:
    """One grid point: the VP/no-VP speedup pair at one taken limit."""
    trace = get_trace(workload, trace_length, seed)
    config = RealisticConfig()
    engine = SequentialFetchEngine(width=config.issue_width, max_taken=limit)
    bpred = make_bpred()
    plan = engine.plan(trace, bpred)
    base = simulate_realistic(
        trace, engine, bpred, vp_unit=None, config=config, plan=plan
    )
    vp_unit = AbstractVPUnit(make_predictor())
    with_vp = simulate_realistic(
        trace, engine, bpred, vp_unit=vp_unit, config=config, plan=plan
    )
    return {"workload": workload, "limit": limit, "gain": speedup(with_vp, base)}


def cells(
    trace_length: int = DEFAULT_TRACE_LENGTH,
    seed: int = 0,
    workloads: Optional[Sequence[str]] = None,
    taken_limits: Sequence[Optional[int]] = DEFAULT_TAKEN_LIMITS,
    make_bpred=PerfectBranchPredictor,
    experiment_id: str = EXPERIMENT_ID,
) -> List[Cell]:
    names = list(workloads) if workloads else list(WORKLOAD_NAMES)
    return [
        Cell(
            experiment_id,
            f"{name}|{_label(limit)}",
            compute_cell,
            {"workload": name, "limit": limit,
             "trace_length": trace_length, "seed": seed,
             "make_bpred": make_bpred},
        )
        for name in names
        for limit in taken_limits
    ]


def assemble(
    values: Dict[str, Any],
    trace_length: int = 0,
    seed: int = 0,
    experiment_id: str = EXPERIMENT_ID,
    title: str = TITLE,
    note: str = PAPER_NOTE,
) -> ExperimentResult:
    del trace_length, seed
    limits: List[Optional[int]] = []
    rows: Dict[str, Dict[Optional[int], float]] = {}
    for value in values.values():
        rows.setdefault(value["workload"], {})[value["limit"]] = value["gain"]
        if value["limit"] not in limits:
            limits.append(value["limit"])
    result = ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        headers=["benchmark"] + [_label(limit) for limit in limits],
    )
    for name, gains in rows.items():
        result.rows.append(
            [name] + [format_percent(gains[limit]) for limit in limits]
        )
    result.rows.append(
        ["avg"]
        + [
            format_percent(mean([gains[limit] for gains in rows.values()]))
            for limit in limits
        ]
    )
    result.notes.append(note)
    return result


def run(
    trace_length: int = DEFAULT_TRACE_LENGTH,
    seed: int = 0,
    taken_limits: Sequence[Optional[int]] = DEFAULT_TAKEN_LIMITS,
    workloads: Optional[Sequence[str]] = None,
    make_bpred=PerfectBranchPredictor,
    experiment_id: str = EXPERIMENT_ID,
    title: str = TITLE,
) -> ExperimentResult:
    """Regenerate Figure 5.1 (also parameterized by fig5_2 for its BTB)."""
    grid = cells(trace_length, seed, workloads, taken_limits,
                 make_bpred=make_bpred, experiment_id=experiment_id)
    values = {cell.cell_id: cell.compute() for cell in grid}
    return assemble(values, experiment_id=experiment_id, title=title)


SPEC = ExperimentSpec(EXPERIMENT_ID, cells, assemble)
