"""EXP-5.1 — Figure 5.1: VP speedup vs taken branches per cycle, with an
ideal branch predictor.

Machine: the Section 5 realistic machine (window 40, 40 FUs, issue 40,
branch penalty 3, value penalty 1). Fetch: sequential, width 40, up to
n taken branches per cycle, n ∈ {1, 2, 3, 4, unlimited}. The branch
predictor is perfect, isolating fetch bandwidth from prediction
accuracy. VP hardware: the conventional (conflict-free) stride unit
with a 2-bit classifier.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.analysis.report import ExperimentResult, format_percent
from repro.bpred import PerfectBranchPredictor
from repro.core import RealisticConfig, simulate_realistic, speedup
from repro.experiments.common import DEFAULT_TRACE_LENGTH, mean, workload_traces
from repro.fetch import SequentialFetchEngine
from repro.vphw import AbstractVPUnit
from repro.vpred import make_predictor

DEFAULT_TAKEN_LIMITS: Tuple[Optional[int], ...] = (1, 2, 3, 4, None)


def _label(limit: Optional[int]) -> str:
    return "unlimited" if limit is None else f"n={limit}"


def run(
    trace_length: int = DEFAULT_TRACE_LENGTH,
    seed: int = 0,
    taken_limits: Sequence[Optional[int]] = DEFAULT_TAKEN_LIMITS,
    workloads: Optional[Sequence[str]] = None,
    make_bpred=PerfectBranchPredictor,
    experiment_id: str = "fig5.1",
    title: str = "VP speedup vs taken branches/cycle (ideal BTB)",
) -> ExperimentResult:
    """Regenerate Figure 5.1 (also parameterized by fig5_2 for its BTB)."""
    traces = workload_traces(trace_length, seed, workloads)
    config = RealisticConfig()
    result = ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        headers=["benchmark"] + [_label(limit) for limit in taken_limits],
    )
    per_limit = {limit: [] for limit in taken_limits}
    for name, trace in traces.items():
        cells = [name]
        for limit in taken_limits:
            engine = SequentialFetchEngine(width=config.issue_width, max_taken=limit)
            bpred = make_bpred()
            plan = engine.plan(trace, bpred)
            base = simulate_realistic(
                trace, engine, bpred, vp_unit=None, config=config, plan=plan
            )
            vp_unit = AbstractVPUnit(make_predictor())
            with_vp = simulate_realistic(
                trace, engine, bpred, vp_unit=vp_unit, config=config, plan=plan
            )
            gain = speedup(with_vp, base)
            per_limit[limit].append(gain)
            cells.append(format_percent(gain))
        result.rows.append(cells)
    result.rows.append(
        ["avg"] + [format_percent(mean(per_limit[limit])) for limit in taken_limits]
    )
    result.notes.append(
        "paper (avg, ideal BTB): ~3% at n=1 rising to ~50% at n=4"
    )
    return result
