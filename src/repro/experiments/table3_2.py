"""EXP-T3.2 — Table 3.2: instructions progressing through the pipeline.

Reconstructs the paper's running example: the Figure 3.2 dataflow graph
(eight instructions; 2 and 4 depend on 1 and 2 at short DID; 5 and 7
depend on 1 and 3 at DID >= 4; 6 and 8 depend on 5 and 7) executed on a
4-wide machine with a perfect value predictor. With the predictor, the
short-DID consumers (2, 4, 6, 8) execute in the same cycle as their
producers; the long-DID consumers (5, 7) never needed the prediction —
their inputs were already computed — which is the paper's point.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.report import ExperimentResult
from repro.core.ideal import pipeline_table
from repro.exec.cells import Cell, ExperimentSpec
from repro.isa.opcodes import Opcode
from repro.trace.record import DynInstr

EXPERIMENT_ID = "table3.2"

# (dest, srcs) per instruction of Figure 3.2, in appearance order.
FIGURE_3_2 = [
    (1, ()),       # 1
    (2, (1,)),     # 2: DID 1
    (3, ()),       # 3
    (4, (2,)),     # 4: DID 2
    (5, (1,)),     # 5: DID 4
    (6, (5,)),     # 6: DID 1
    (7, (3,)),     # 7: DID 4
    (8, (7,)),     # 8: DID 1
]


def figure_3_2_trace() -> List[DynInstr]:
    """The Figure 3.2 example as a dynamic-instruction list."""
    records = []
    for i, (dest, srcs) in enumerate(FIGURE_3_2):
        records.append(
            DynInstr(
                seq=i,
                pc=0x1000 + 4 * i,
                op=Opcode.ADD,
                dest=dest,
                srcs=srcs,
                value=i,
                next_pc=0x1000 + 4 * (i + 1),
            )
        )
    return records


def run(trace_length: int = 0, seed: int = 0) -> ExperimentResult:
    """Regenerate Table 3.2 (arguments accepted for runner uniformity)."""
    del trace_length, seed
    rows = pipeline_table(figure_3_2_trace(), fetch_rate=4)
    result = ExperimentResult(
        experiment_id="table3.2",
        title="Pipeline progress of the Figure 3.2 example (4-wide, perfect VP)",
        headers=["cycle", "fetch", "decode/issue", "execute", "commit"],
    )
    for cycle, fetched, decoded, executed, committed in rows:
        result.rows.append(
            [
                str(cycle),
                ", ".join(map(str, fetched)),
                ", ".join(map(str, decoded)),
                ", ".join(map(str, executed)),
                ", ".join(map(str, committed)),
            ]
        )
    result.notes.append(
        "instructions 2/4 and 6/8 used value prediction; 5 and 7 did not "
        "need it (their producers' DID >= fetch rate)"
    )
    return result


# -- engine grid -----------------------------------------------------------
# The table has no workload × configuration sweep — its "grid" is the
# single Figure 3.2 walkthrough, exposed as one picklable cell so the
# engine schedules it uniformly with the real grids.

def compute_cell(trace_length: int, seed: int) -> dict:
    return run(trace_length, seed).to_dict()


def cells(trace_length: int = 0, seed: int = 0,
          workloads: Optional[Sequence[str]] = None) -> List[Cell]:
    del workloads  # the walkthrough is workload-independent
    return [Cell(EXPERIMENT_ID, "all", compute_cell,
                 {"trace_length": trace_length, "seed": seed})]


def assemble(values: Dict[str, Any], trace_length: int = 0,
             seed: int = 0) -> ExperimentResult:
    del trace_length, seed
    return ExperimentResult.from_dict(values["all"])


SPEC = ExperimentSpec(EXPERIMENT_ID, cells, assemble)
