"""EXP-3.1 — Figure 3.1: the effect of instruction-fetch rate on value
prediction in an ideal execution environment.

Machine: the Section 3 ideal machine (window 40, no control/name/
structural hazards), fetch/issue rate swept over 4/8/16/32/40.
Predictor: infinite stride table + 2-bit saturating-counter classifier.
The reported number per (benchmark, rate) is the speedup of value
prediction relative to the same machine without it.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.analysis.report import ExperimentResult, format_percent
from repro.core import IdealConfig, plan_value_predictions, simulate_ideal, speedup
from repro.experiments.common import DEFAULT_TRACE_LENGTH, mean, workload_traces
from repro.vpred import make_predictor

DEFAULT_RATES: Tuple[int, ...] = (4, 8, 16, 32, 40)


def run(
    trace_length: int = DEFAULT_TRACE_LENGTH,
    seed: int = 0,
    rates: Sequence[int] = DEFAULT_RATES,
    workloads: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    """Regenerate Figure 3.1."""
    traces = workload_traces(trace_length, seed, workloads)
    result = ExperimentResult(
        experiment_id="fig3.1",
        title="VP speedup on the ideal machine vs fetch rate",
        headers=["benchmark"] + [f"BW={rate}" for rate in rates],
    )
    per_rate = {rate: [] for rate in rates}
    for name, trace in traces.items():
        vp_plan = plan_value_predictions(trace, make_predictor())
        cells = [name]
        for rate in rates:
            base = simulate_ideal(trace, IdealConfig(fetch_rate=rate))
            with_vp = simulate_ideal(
                trace, IdealConfig(fetch_rate=rate), vp_plan=vp_plan
            )
            gain = speedup(with_vp, base)
            per_rate[rate].append(gain)
            cells.append(format_percent(gain))
        result.rows.append(cells)
    result.rows.append(
        ["avg"] + [format_percent(mean(per_rate[rate])) for rate in rates]
    )
    result.notes.append(
        "paper (avg): 4→~0%, 8→8%, 16→33%, 32→70%, 40→80%; "
        "m88ksim and vortex react most strongly to the fetch rate"
    )
    return result
