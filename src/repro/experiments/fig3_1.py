"""EXP-3.1 — Figure 3.1: the effect of instruction-fetch rate on value
prediction in an ideal execution environment.

Machine: the Section 3 ideal machine (window 40, no control/name/
structural hazards), fetch/issue rate swept over 4/8/16/32/40.
Predictor: infinite stride table + 2-bit saturating-counter classifier.
The reported number per (benchmark, rate) is the speedup of value
prediction relative to the same machine without it.

The grid is benchmark × fetch rate; each cell is independent (the VP
plan is rate-independent and deterministic, so recomputing it per cell
changes nothing), which is what lets the engine fan the figure out
over worker processes.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.report import ExperimentResult, format_percent
from repro.core import IdealConfig, plan_value_predictions, simulate_ideal, speedup
from repro.exec.cells import Cell, ExperimentSpec
from repro.experiments.common import DEFAULT_TRACE_LENGTH, get_trace, mean
from repro.vpred import make_predictor
from repro.workloads import WORKLOAD_NAMES

DEFAULT_RATES: Tuple[int, ...] = (4, 8, 16, 32, 40)

EXPERIMENT_ID = "fig3.1"
TITLE = "VP speedup on the ideal machine vs fetch rate"


def compute_cell(workload: str, rate: int, trace_length: int, seed: int) -> dict:
    """One grid point: VP speedup for ``workload`` at fetch ``rate``."""
    trace = get_trace(workload, trace_length, seed)
    vp_plan = plan_value_predictions(trace, make_predictor())
    base = simulate_ideal(trace, IdealConfig(fetch_rate=rate))
    with_vp = simulate_ideal(trace, IdealConfig(fetch_rate=rate), vp_plan=vp_plan)
    return {"workload": workload, "rate": rate, "gain": speedup(with_vp, base)}


def cells(
    trace_length: int = DEFAULT_TRACE_LENGTH,
    seed: int = 0,
    workloads: Optional[Sequence[str]] = None,
    rates: Sequence[int] = DEFAULT_RATES,
) -> List[Cell]:
    names = list(workloads) if workloads else list(WORKLOAD_NAMES)
    return [
        Cell(
            EXPERIMENT_ID,
            f"{name}|rate={rate}",
            compute_cell,
            {"workload": name, "rate": rate,
             "trace_length": trace_length, "seed": seed},
        )
        for name in names
        for rate in rates
    ]


def assemble(values: Dict[str, Any], trace_length: int = 0,
             seed: int = 0) -> ExperimentResult:
    """Fold grid-ordered cell values back into the Figure 3.1 table."""
    del trace_length, seed
    rates: List[int] = []
    rows: Dict[str, Dict[int, float]] = {}
    for value in values.values():
        rows.setdefault(value["workload"], {})[value["rate"]] = value["gain"]
        if value["rate"] not in rates:
            rates.append(value["rate"])
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=["benchmark"] + [f"BW={rate}" for rate in rates],
    )
    for name, gains in rows.items():
        result.rows.append(
            [name] + [format_percent(gains[rate]) for rate in rates]
        )
    result.rows.append(
        ["avg"]
        + [
            format_percent(mean([gains[rate] for gains in rows.values()]))
            for rate in rates
        ]
    )
    result.notes.append(
        "paper (avg): 4→~0%, 8→8%, 16→33%, 32→70%, 40→80%; "
        "m88ksim and vortex react most strongly to the fetch rate"
    )
    return result


def run(
    trace_length: int = DEFAULT_TRACE_LENGTH,
    seed: int = 0,
    rates: Sequence[int] = DEFAULT_RATES,
    workloads: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    """Regenerate Figure 3.1 (serial path over the same cells)."""
    grid = cells(trace_length, seed, workloads, rates)
    return assemble({cell.cell_id: cell.compute() for cell in grid})


SPEC = ExperimentSpec(EXPERIMENT_ID, cells, assemble)
