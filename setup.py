"""Setuptools shim.

Kept alongside pyproject.toml so `python setup.py develop` works in
fully-offline environments where pip cannot build an editable wheel
(no `wheel` package and no network to fetch one).
"""

from setuptools import setup

setup()
